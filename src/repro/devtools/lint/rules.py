"""The eight project rules, each distilled from a bug (or a measured
performance cliff) this repo shipped.

========  ==================================================================
REP001    No module-level / shared default RNG in library code.  The
          ``_DEFAULT_RNG`` stream in ``nn/initializers.py`` made weight
          initialization depend on how many layers *other* code had built
          first, which produced an order-dependent flaky training test
          (deflaked in PR 3).  Inject ``np.random.Generator`` instead.
REP002    No bare ``Lock.acquire()``/``release()`` — a raised exception
          between the pair leaves the lock held forever.  Use ``with``.
REP003    Closeable resources (thread pools, parallel/distributed
          executors, device shards) must have an ownership path to
          ``close()``: the compile-race of PR 1's ``PipelineCache`` leaked
          whole worker pools because the losing pipeline of a concurrent
          compile was never released.
REP004    Dict memos on hot paths must declare an eviction path.  The
          engine's modelled-latency memo grew one entry per distinct batch
          size *forever* until PR 3 LRU-capped it.
REP005    Tests must not draw from the global NumPy RNG — test order then
          changes the stream every other test sees (the exact mechanism
          behind the ``test_fit_learns_separable_task`` flake).
REP006    ``__all__`` must match the module's public defs; drift means the
          documented API and the real API disagree.
REP007    No per-element Python loop over a patch grid or kernel offsets in
          the hot kernel modules (``nn/functional``, ``patch/executor``,
          ``repro.backend``).  PR 8 measured the interpreted patch loop at
          3-5x the wall time of the batched backend; kernels belong behind
          ``repro.backend`` as vectorized NumPy.  Reference oracles are the
          sanctioned exception — suppress with a ``noqa`` naming them.
REP008    No direct thread-pool / process-pool / shared-memory construction
          outside ``repro/runtime/``.  Before the shared
          :class:`~repro.runtime.Runtime` existed, five classes privately
          owned pools with five slightly different lifecycles (and the
          engine's latency model leaked whole device-pool sets); resources
          are leased from a runtime so one ``close()`` releases everything.
========  ==================================================================
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from .framework import Finding, LintRule, ModuleSource, register_rule

__all__ = [
    "SharedDefaultRng",
    "BareLockAcquire",
    "UnownedCloseable",
    "UnboundedMemo",
    "GlobalRngInTests",
    "DunderAllDrift",
    "HotLoopOverPatchDomain",
    "ResourceOutsideRuntime",
]

#: numpy.random attributes that are *not* the legacy global-state API.
_NEW_STYLE_RNG = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}

#: Constructors whose instances hold threads / pools and must reach close().
_CLOSEABLE_CTORS = {
    "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.thread.ThreadPoolExecutor",
    "concurrent.futures.process.ProcessPoolExecutor",
    "multiprocessing.Pool",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "ParallelPatchExecutor",
    "DistributedExecutor",
    "DeviceShard",
    "InferenceEngine",
}

_MEMO_NAME_RE = re.compile(r"cache|memo|breakdown", re.IGNORECASE)

_EMPTY_MAPPING_CTORS = {"dict", "OrderedDict", "defaultdict", "WeakValueDictionary"}


def _parent(node: ast.AST) -> ast.AST | None:
    # Parent pointers are attached once by ModuleSource; rules only read them.
    return getattr(node, "_lint_parent", None)


def _enclosing(node: ast.AST, kinds: tuple[type, ...]) -> ast.AST | None:
    current = _parent(node)
    while current is not None and not isinstance(current, kinds):
        current = _parent(current)
    return current


# --------------------------------------------------------------------- REP001
@register_rule
class SharedDefaultRng(LintRule):
    code = "REP001"
    name = "shared-default-rng"
    severity = "error"
    scope = "library"
    description = (
        "Module- or class-level RNG instances are shared mutable state: the "
        "values any caller draws depend on every draw made before it, "
        "anywhere in the process.  Inject np.random.Generator instead."
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        # (a) module/class-level assignment of a generator (shared stream).
        scopes: list[tuple[str, list[ast.stmt]]] = [("module", module.tree.body)]
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                scopes.append(("class", node.body))
        for scope_kind, body in scopes:
            for stmt in body:
                if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    continue
                value = stmt.value
                if value is None:
                    continue
                for call in ast.walk(value):
                    if isinstance(call, ast.Call):
                        dotted = module.resolve_dotted(call.func)
                        # Legacy global-API calls are reported by clause (b);
                        # this clause flags stored new-style generator streams.
                        if (
                            dotted is not None
                            and dotted.startswith("numpy.random.")
                            and dotted.rsplit(".", 1)[1] in _NEW_STYLE_RNG
                        ):
                            yield module.finding(
                                self,
                                stmt,
                                f"{scope_kind}-level RNG is shared mutable state; "
                                "inject an np.random.Generator per call or per "
                                "instance instead",
                            )
                            break
        # (b) any use of the legacy global-state numpy.random API.
        for node in module.nodes:
            if isinstance(node, ast.Call):
                dotted = module.resolve_dotted(node.func)
                if (
                    dotted is not None
                    and dotted.startswith("numpy.random.")
                    and dotted.rsplit(".", 1)[1] not in _NEW_STYLE_RNG
                ):
                    yield module.finding(
                        self,
                        node,
                        f"legacy global-RNG call {dotted}() mutates process-wide "
                        "state; use an injected np.random.Generator",
                    )


# --------------------------------------------------------------------- REP002
@register_rule
class BareLockAcquire(LintRule):
    code = "REP002"
    name = "bare-lock-acquire"
    severity = "error"
    scope = "library"
    description = (
        "Explicit acquire()/release() pairs leak the lock if any statement "
        "between them raises; use `with lock:` so release is unconditional."
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in module.nodes:
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("acquire", "release")
                and not self._in_lock_implementation(node)
            ):
                yield module.finding(
                    self,
                    node,
                    f"bare .{node.func.attr}() call; manage the lock with a "
                    "`with` block instead",
                )

    @staticmethod
    def _in_lock_implementation(node: ast.AST) -> bool:
        """A class that itself defines acquire/release IS a lock (wrapper);
        its internal delegation is the one place raw calls belong."""
        enclosing = _enclosing(node, (ast.ClassDef,))
        return enclosing is not None and any(
            isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            and item.name in ("acquire", "release")
            for item in enclosing.body
        )


# --------------------------------------------------------------------- REP003
@register_rule
class UnownedCloseable(LintRule):
    code = "REP003"
    name = "unowned-closeable"
    severity = "error"
    scope = "library"
    description = (
        "A worker pool / executor created without an ownership path to "
        "close() leaks its threads; store it on an object with close(), use "
        "a with block, return it, or hand it to an owner."
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        classes_with_close = {
            node
            for node in module.nodes
            if isinstance(node, ast.ClassDef)
            and any(
                isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and item.name in ("close", "shutdown", "__exit__", "stop")
                for item in node.body
            )
        }
        for call in module.nodes:
            if not isinstance(call, ast.Call):
                continue
            ctor = self._closeable_name(module, call)
            if ctor is None:
                continue
            if not self._is_owned(module, call, classes_with_close):
                yield module.finding(
                    self,
                    call,
                    f"{ctor} created without an ownership path to close(); "
                    "use `with`, store it on an object that closes it, or "
                    "return it to the caller",
                )

    @staticmethod
    def _closeable_name(module: ModuleSource, call: ast.Call) -> str | None:
        dotted = module.resolve_dotted(call.func)
        if dotted is None:
            return None
        if dotted in _CLOSEABLE_CTORS:
            return dotted
        tail = dotted.rsplit(".", 1)[-1]
        return tail if tail in _CLOSEABLE_CTORS else None

    def _is_owned(
        self, module: ModuleSource, call: ast.Call, classes_with_close: set
    ) -> bool:
        parent = _parent(call)
        # `with Ctor() as x:` — the with block guarantees release.
        if isinstance(parent, ast.withitem):
            return True
        # `return Ctor()` / `yield Ctor()` — the caller takes ownership.
        if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
            return True
        # `something(Ctor())` / `[Ctor(...) for ...]` handed to a collection
        # or another call — ownership transfers to the receiver.
        if isinstance(parent, ast.Call) and call in parent.args:
            return True
        if isinstance(parent, ast.keyword) and isinstance(_parent(parent), ast.Call):
            return True
        if isinstance(parent, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            return self._comprehension_owned(module, parent, classes_with_close)
        if isinstance(parent, (ast.List, ast.Tuple, ast.Set, ast.Dict)):
            # Inside a literal: ownership follows the literal's own fate.
            grand = _parent(parent)
            if isinstance(grand, (ast.Assign, ast.AnnAssign, ast.Return)):
                parent = grand
            else:
                return False
        # `x = Ctor()` / `self.attr = Ctor()` — trace the assignment target.
        if isinstance(parent, (ast.Assign, ast.AnnAssign)):
            return self._assignment_owned(module, parent, classes_with_close)
        return False

    def _comprehension_owned(self, module, comp, classes_with_close) -> bool:
        outer = _parent(comp)
        while isinstance(outer, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            outer = _parent(outer)
        if isinstance(outer, (ast.Return, ast.Yield)):
            return True
        if isinstance(outer, ast.Call) and comp in outer.args:
            return True
        if isinstance(outer, (ast.Assign, ast.AnnAssign)):
            return self._assignment_owned(module, outer, classes_with_close)
        return False

    def _assignment_owned(self, module, assign, classes_with_close) -> bool:
        targets = assign.targets if isinstance(assign, ast.Assign) else [assign.target]
        for target in targets:
            # `self.attr = Ctor()` inside a class that defines close().
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                enclosing_class = _enclosing(assign, (ast.ClassDef,))
                if enclosing_class in classes_with_close:
                    return True
                return False
            # `container[key] = Ctor()` — the container owns it.
            if isinstance(target, ast.Subscript):
                return True
            if isinstance(target, ast.Name):
                scope = _enclosing(assign, (ast.FunctionDef, ast.AsyncFunctionDef))
                body = scope.body if scope is not None else module.tree.body
                if self._name_reaches_owner(target.id, body):
                    return True
        return False

    @staticmethod
    def _name_reaches_owner(name: str, body: list[ast.stmt]) -> bool:
        """Does ``name`` later get closed, with-ed, returned or handed off?"""
        for stmt in body:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == name
                    and node.attr in ("close", "shutdown")
                ):
                    return True
                if isinstance(node, ast.withitem):
                    expr = node.context_expr
                    if isinstance(expr, ast.Name) and expr.id == name:
                        return True
                if isinstance(node, (ast.Return, ast.Yield)) and node.value is not None:
                    for leaf in ast.walk(node.value):
                        if isinstance(leaf, ast.Name) and leaf.id == name:
                            return True
                if isinstance(node, ast.Call):
                    for arg in list(node.args) + [kw.value for kw in node.keywords]:
                        for leaf in ast.walk(arg):
                            if isinstance(leaf, ast.Name) and leaf.id == name:
                                return True
                if isinstance(node, (ast.Assign, ast.AnnAssign)):
                    value = node.value
                    if isinstance(value, ast.Name) and value.id == name:
                        targets = (
                            node.targets if isinstance(node, ast.Assign) else [node.target]
                        )
                        if any(
                            isinstance(t, (ast.Attribute, ast.Subscript)) for t in targets
                        ):
                            return True
        return False


# --------------------------------------------------------------------- REP004
@register_rule
class UnboundedMemo(LintRule):
    code = "REP004"
    name = "unbounded-memo"
    severity = "warning"
    scope = "library"
    description = (
        "A module- or instance-level dict memo with no eviction path grows "
        "for the life of the process; declare an LRU cap or an eviction hook."
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for target_name, stmt in self._memo_assignments(module):
            if not self._has_eviction(module, target_name):
                yield module.finding(
                    self,
                    stmt,
                    f"dict memo {target_name!r} has no eviction path in this "
                    "module; cap it (LRU popitem loop) or evict via a hook",
                )

    def _memo_assignments(self, module: ModuleSource):
        """(name, stmt) for empty-mapping assignments to memo-named targets."""
        candidates: list[tuple[ast.stmt, list[ast.expr]]] = []
        module_body = set(map(id, module.tree.body))
        for stmt in module.nodes:
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)) or stmt.value is None:
                continue
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            if id(stmt) in module_body:
                candidates.append((stmt, targets))
                continue
            self_targets = [
                t
                for t in targets
                if isinstance(t, ast.Attribute)
                and isinstance(t.value, ast.Name)
                and t.value.id == "self"
            ]
            if self_targets:
                candidates.append((stmt, self_targets))
        for stmt, targets in candidates:
            if not self._is_empty_mapping(stmt.value):
                continue
            for target in targets:
                name = None
                if isinstance(target, ast.Name):
                    name = target.id
                elif isinstance(target, ast.Attribute):
                    name = target.attr
                if name is not None and _MEMO_NAME_RE.search(name):
                    yield name, stmt

    @staticmethod
    def _is_empty_mapping(value: ast.expr) -> bool:
        if isinstance(value, ast.Dict) and not value.keys:
            return True
        if isinstance(value, ast.Call) and not value.args and not value.keywords:
            func = value.func
            tail = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", None)
            return tail in _EMPTY_MAPPING_CTORS
        return False

    @staticmethod
    def _has_eviction(module: ModuleSource, name: str) -> bool:
        """Any ``<name>.pop/popitem/clear`` or ``del <name>[...]`` in module."""
        for node in module.nodes:
            if (
                isinstance(node, ast.Attribute)
                and node.attr in ("pop", "popitem", "clear")
            ):
                base = node.value
                base_name = None
                if isinstance(base, ast.Name):
                    base_name = base.id
                elif isinstance(base, ast.Attribute):
                    base_name = base.attr
                if base_name == name:
                    return True
            if isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        base = target.value
                        base_name = (
                            base.id
                            if isinstance(base, ast.Name)
                            else getattr(base, "attr", None)
                        )
                        if base_name == name:
                            return True
        return False


# --------------------------------------------------------------------- REP005
@register_rule
class GlobalRngInTests(LintRule):
    code = "REP005"
    name = "global-rng-in-tests"
    severity = "error"
    scope = "test"
    description = (
        "A test drawing from the global NumPy RNG couples every test's "
        "randomness to execution order; seed a local default_rng instead."
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in module.nodes:
            if isinstance(node, ast.Call):
                dotted = module.resolve_dotted(node.func)
                if (
                    dotted is not None
                    and dotted.startswith("numpy.random.")
                    and dotted.rsplit(".", 1)[1] not in _NEW_STYLE_RNG
                ):
                    yield module.finding(
                        self,
                        node,
                        f"test draws from the global NumPy RNG ({dotted}()); "
                        "use a seeded np.random.default_rng(...) local to the test",
                    )


# --------------------------------------------------------------------- REP006
@register_rule
class DunderAllDrift(LintRule):
    code = "REP006"
    name = "dunder-all-drift"
    severity = "warning"
    scope = "library"
    description = (
        "__all__ disagreeing with the module's public defs means the "
        "documented API and the real one diverged."
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        all_node, exported = self._dunder_all(module)
        if all_node is None:
            return
        defined: set[str] = set(module.import_aliases)
        public_defs: dict[str, ast.stmt] = {}
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                defined.add(stmt.name)
                if not stmt.name.startswith("_"):
                    public_defs[stmt.name] = stmt
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                for target in targets:
                    if isinstance(target, ast.Name):
                        defined.add(target.id)
            elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
                for alias in stmt.names:
                    if alias.name == "*":
                        return  # star re-export: membership is not decidable
                    defined.add(alias.asname or alias.name.split(".")[0])
        for name in exported:
            if name not in defined:
                yield module.finding(
                    self, all_node, f"__all__ exports {name!r} which is not defined here"
                )
        for name, stmt in sorted(public_defs.items()):
            if name not in exported:
                yield module.finding(
                    self,
                    stmt,
                    f"public {type(stmt).__name__.replace('Def', '').lower()} "
                    f"{name!r} is missing from __all__",
                )

    @staticmethod
    def _dunder_all(module: ModuleSource) -> tuple[ast.stmt | None, set[str]]:
        for stmt in module.tree.body:
            if (
                isinstance(stmt, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "__all__" for t in stmt.targets
                )
                and isinstance(stmt.value, (ast.List, ast.Tuple))
            ):
                names = {
                    elt.value
                    for elt in stmt.value.elts
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                }
                return stmt, names
        return None, set()


# --------------------------------------------------------------------- REP007
#: Modules where per-element patch/kernel loops cost real wall time (PR 8
#: measured 3-5x): the NumPy kernels, the patch executor, and the compute
#: backends themselves.
_HOT_MODULE_RE = re.compile(
    r"(?:^|/)repro/(?:nn/functional|patch/executor|backend/[a-z_]+)\.py$"
)

#: Names that denote a patch-grid or kernel-offset domain when looped over.
_HOT_DOMAIN_RE = re.compile(
    r"^(?:kh|kw|kernel_h|kernel_w|kernel_size|num_patches|num_branches"
    r"|branches|branch_ids|patches|patch_ids)$"
)

#: Iterator wrappers that are transparent for domain detection: looping over
#: ``enumerate(branches)`` or ``range(num_patches)`` is still a domain loop.
_ITER_WRAPPERS = {"range", "enumerate", "zip", "reversed", "sorted"}

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)


@register_rule
class HotLoopOverPatchDomain(LintRule):
    code = "REP007"
    name = "python-loop-in-hot-kernel"
    severity = "warning"
    scope = "library"
    description = (
        "An interpreted per-element loop over a patch grid or kernel offsets "
        "in a hot kernel module pays the Python dispatch cost once per "
        "element; batch it through the vectorized compute backend (stacked "
        "scratch + strided windows).  Reference oracles keep their loops — "
        "suppress with `# repro: noqa[REP007] - <why>`."
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not _HOT_MODULE_RE.search(module.path):
            return
        for node in module.nodes:
            if isinstance(node, ast.For):
                iters, anchor = [node.iter], node
            elif isinstance(node, _COMPREHENSIONS):
                iters, anchor = [gen.iter for gen in node.generators], node
            else:
                continue
            domain = next(
                (name for it in iters if (name := self._domain_name(it))), None
            )
            if domain is None:
                continue
            # A nested loop inside an already-flagged domain loop is the same
            # finding (e.g. the kh/kw nest of an im2col oracle): one report —
            # and one suppression — on the outermost loop covers the nest.
            if self._inside_hot_loop(module, node):
                continue
            if not self._does_work(node, iters):
                continue
            kind = "for loop" if isinstance(node, ast.For) else "comprehension"
            yield module.finding(
                self,
                anchor,
                f"per-element {kind} over {domain!r} in a hot kernel module; "
                "batch it through the vectorized backend, or noqa a reference "
                "oracle",
            )

    @classmethod
    def _domain_name(cls, iter_expr: ast.expr) -> str | None:
        """The hot domain this expression iterates, or None.

        Direct iteration (``for b in branches`` / ``self.plan.branches``)
        matches on the trailing name; wrapped iteration matches hot names
        anywhere in the wrapper's arguments (``range(num_patches * 2)``,
        ``enumerate(branch_ids)``, ``range(len(patches))``).
        """
        if isinstance(iter_expr, ast.Call):
            func = iter_expr.func
            fname = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
            if fname not in _ITER_WRAPPERS:
                return None
            for arg in iter_expr.args:
                for leaf in ast.walk(arg):
                    name = cls._leaf_name(leaf)
                    if name is not None and _HOT_DOMAIN_RE.match(name):
                        return name
            return None
        name = cls._leaf_name(iter_expr)
        if name is not None and _HOT_DOMAIN_RE.match(name):
            return name
        return None

    @staticmethod
    def _leaf_name(node: ast.AST) -> str | None:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return None

    @classmethod
    def _inside_hot_loop(cls, module: ModuleSource, node: ast.AST) -> bool:
        current = module.parent(node)
        while current is not None:
            if isinstance(current, ast.For) and cls._domain_name(current.iter):
                return True
            if isinstance(current, _COMPREHENSIONS) and any(
                cls._domain_name(gen.iter) for gen in current.generators
            ):
                return True
            current = module.parent(current)
        return False

    @staticmethod
    def _does_work(node: ast.AST, iters: list[ast.expr]) -> bool:
        """Per-element *work* means a call in the loop body.

        Pure data plumbing — ``[(branches[i], tiles[i]) for i in ids]`` —
        is index arithmetic, not kernel work, and stays legal.  The iterator
        expressions themselves are excluded so ``enumerate(...)`` in the
        header does not count as body work.
        """
        iter_nodes = {id(n) for it in iters for n in ast.walk(it)}
        return any(
            isinstance(inner, ast.Call) and id(inner) not in iter_nodes
            for inner in ast.walk(node)
        )


# --------------------------------------------------------------------- REP008
#: The one directory allowed to construct concurrency resources directly.
_RUNTIME_MODULE_RE = re.compile(r"(?:^|/)repro/runtime/")

#: Leaf names of the resource constructors the runtime owns.  "Pool" covers
#: both ``multiprocessing.Pool`` and context-bound ``ctx.Pool`` calls (the
#: dotted resolver cannot see through ``get_context(...).Pool``).
_RUNTIME_CTORS = {
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "SharedMemory",
    "Pool",
}


@register_rule
class ResourceOutsideRuntime(LintRule):
    code = "REP008"
    name = "resource-outside-runtime"
    severity = "error"
    scope = "library"
    description = (
        "Thread pools, process pools and shared-memory segments are "
        "constructed only inside repro/runtime/ — everything else leases "
        "them from a Runtime, so lifecycles are refcounted in one place and "
        "one Runtime.close() releases every resource.  Code with a genuine "
        "reason to bypass the runtime must say so with "
        "`# repro: noqa[REP008] - <why>`."
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if _RUNTIME_MODULE_RE.search(module.path):
            return
        for node in module.nodes:
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            leaf = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else None
            )
            if leaf in _RUNTIME_CTORS:
                yield module.finding(
                    self,
                    node,
                    f"direct {leaf}(...) construction outside repro/runtime/; "
                    "lease it from a Runtime (thread_pool/fork_pool/"
                    "shared_segment) instead",
                )
