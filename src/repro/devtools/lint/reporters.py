"""Human and machine renderings of a lint run."""

from __future__ import annotations

import json

from .baseline import BaselineDiff
from .framework import LintReport

__all__ = ["format_text", "format_json"]


def format_text(report: LintReport, diff: BaselineDiff | None = None) -> str:
    """The human reporter: one line per finding plus a summary."""
    lines: list[str] = []
    new_keys = None
    if diff is not None:
        new_ids = {id(f) for f in diff.new}
        new_keys = new_ids
    for finding in report.findings:
        marker = ""
        if new_keys is not None:
            marker = " [new]" if id(finding) in new_keys else " [baseline]"
        lines.append(finding.render() + marker)
    for error in report.parse_errors:
        lines.append(f"parse error: {error}")
    if diff is not None and diff.stale:
        for rule, path, context in diff.stale:
            lines.append(
                f"stale baseline entry: {rule} {path} ({context!r}) — "
                "no longer produced; prune it with --write-baseline"
            )
    counts = ", ".join(f"{rule}: {n}" for rule, n in report.counts_by_rule().items())
    summary = (
        f"{len(report.findings)} finding(s) in {report.files_checked} file(s)"
        + (f" ({counts})" if counts else "")
    )
    if diff is not None:
        summary += f"; {len(diff.new)} new, {len(diff.grandfathered)} baselined"
    lines.append(summary)
    return "\n".join(lines)


def format_json(report: LintReport, diff: BaselineDiff | None = None) -> str:
    """The machine reporter consumed by the CI gate."""
    payload = {
        "files_checked": report.files_checked,
        "parse_errors": report.parse_errors,
        "counts_by_rule": report.counts_by_rule(),
        "findings": [f.to_dict() for f in report.findings],
    }
    if diff is not None:
        payload["new"] = [f.to_dict() for f in diff.new]
        payload["grandfathered"] = [f.to_dict() for f in diff.grandfathered]
        payload["stale_baseline_entries"] = [
            {"rule": rule, "path": path, "context": context}
            for rule, path, context in diff.stale
        ]
        payload["clean"] = diff.clean
    else:
        payload["clean"] = not report.findings
    return json.dumps(payload, indent=2)
