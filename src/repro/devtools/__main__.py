"""Console entry point: ``python -m repro.devtools <lint|racecheck|bench>``.

``lint``
    Run the project rules over a tree (default ``src``), compare against the
    checked-in baseline (default ``lint_baseline.json``), print text or JSON,
    exit 1 on any finding not in the baseline.

``racecheck``
    First self-test the detector (a deliberately seeded ABBA inversion must
    be caught), then stress the real serving concurrency primitives under
    instrumented locks and scheduling jitter; exit 1 on any hazard.

``bench``
    Time the linter over ``src`` and write ``BENCH_devtools.json``.

``kernel-bench``
    Measure the patch-stage compute kernels (loop reference vs vectorized
    backend, batched throughput, streaming reuse) and write
    ``BENCH_kernels.json``.

``stale-bench``
    Measure the displaced (stale-halo) pipeline schedule against the
    blocking halo exchange across cluster sizes and write
    ``BENCH_stale_halo.json``.

``perfgate``
    Compare a fresh benchmark snapshot against the checked-in baseline and
    exit 1 if any gated metric regressed by more than the tolerance.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .bench import (
    compare_snapshots,
    run_kernel_bench,
    run_lint_bench,
    run_stale_halo_bench,
)
from .lint import (
    Baseline,
    diff_against_baseline,
    format_json,
    format_text,
    lint_paths,
)
from .racecheck import RaceMonitor, instrument
from .stress import StressHarness

__all__ = [
    "main",
    "run_lint",
    "run_racecheck",
    "run_bench",
    "run_kernel_bench_cli",
    "run_stale_bench_cli",
    "run_perfgate",
    "abba_selftest",
    "cache_stress_scenario",
    "runtime_stress_scenario",
]


# ------------------------------------------------------------------- lint
def run_lint(args: argparse.Namespace) -> int:
    report = lint_paths(args.paths, rules=args.rules.split(",") if args.rules else None)
    if args.no_baseline:
        diff = None
        clean = not report.findings and not report.parse_errors
    else:
        baseline = Baseline.load(args.baseline)
        diff = diff_against_baseline(report.findings, baseline)
        if args.write_baseline:
            Baseline.from_findings(report.findings).save(args.baseline)
        clean = diff.clean and not report.parse_errors
    formatter = format_json if args.format == "json" else format_text
    print(formatter(report, diff))
    return 0 if clean else 1


# -------------------------------------------------------------- racecheck
def abba_selftest() -> bool:
    """The detector must catch a deliberately seeded ABBA inversion."""
    monitor = RaceMonitor()
    lock_a, lock_b = monitor.lock("selftest.A"), monitor.lock("selftest.B")
    with lock_a:
        with lock_b:
            pass
    with lock_b:
        with lock_a:
            pass
    cycles = monitor.lock_order_cycles()
    return any("selftest.A" in cycle and "selftest.B" in cycle for cycle in cycles)


def cache_stress_scenario(threads: int, iterations: int) -> "RaceMonitor":
    """Hammer a :class:`~repro.serving.cache.PipelineCache` under jitter.

    Reproduces the shape of the PR 1 compile-race bug: many threads miss on
    the same keys concurrently while others read stats and force evictions.
    The factory returns plain objects (no model compile), so the scenario
    runs in milliseconds while still exercising every lock transition.
    """
    from ..serving.cache import PipelineCache

    harness = StressHarness(threads=threads, iterations=iterations, seed=7)
    monitor = RaceMonitor(jitter=harness.pause)
    released: list[object] = []
    cache = PipelineCache(
        factory=lambda key: object(), capacity=2, on_evict=lambda k, p: released.append(p)
    )
    instrument([cache], monitor)

    def workload(worker: int, iteration: int) -> None:
        key = f"model-{(worker + iteration) % 3}"
        cache.get(key)
        if iteration % 5 == 0:
            cache.stats()
        if iteration % 11 == 0:
            cache.clear()

    report = harness.run(workload)
    if report.errors:
        raise report.errors[0]
    return monitor


def runtime_stress_scenario(threads: int, iterations: int) -> "RaceMonitor":
    """Hammer one shared :class:`~repro.runtime.Runtime` under jitter.

    The shape of PR 10's shared-resource refactor: every executor now leases
    pools from a runtime other tenants are using concurrently.  Workers
    lease/submit/release against a small set of pool keys while others read
    ``stats()`` and churn shared-memory segments, and the last iteration
    races ``close()`` against in-flight leases — late tenants must see a
    clean :class:`~repro.runtime.RuntimeClosed`, never a hang or a cycle.
    """
    from ..runtime.resources import Runtime, RuntimeClosed

    harness = StressHarness(threads=threads, iterations=iterations, seed=11)
    monitor = RaceMonitor(jitter=harness.pause)
    runtime = Runtime(name="racecheck")
    instrument([runtime], monitor)

    def workload(worker: int, iteration: int) -> None:
        try:
            lease = runtime.thread_pool((worker % 2) + 1, tag="stress")
            lease.submit(int).result()
            lease.release()  # repro: noqa[REP002] - pool lease, not a lock
            if iteration % 7 == 0:
                runtime.stats()
            if iteration % 13 == 0:
                runtime.release_segment(runtime.shared_segment(32))
            if worker == 0 and iteration == harness.iterations - 1:
                runtime.close()
        except RuntimeClosed:
            pass  # the closer won the race; the documented contract

    report = harness.run(workload)
    runtime.close()
    if report.errors:
        raise report.errors[0]
    return monitor


def run_racecheck(args: argparse.Namespace) -> int:
    ok = True
    if not abba_selftest():
        print("racecheck SELFTEST FAILED: seeded ABBA inversion was not detected")
        ok = False
    else:
        print("racecheck selftest: seeded ABBA inversion detected (detector live)")
    for scenario in (cache_stress_scenario, runtime_stress_scenario):
        monitor = scenario(args.threads, args.iterations)
        report = monitor.report()
        print(f"[{scenario.__name__}]")
        print(report.render())
        if report.findings:
            ok = False
    print("racecheck: OK" if ok else "racecheck: FAILED")
    return 0 if ok else 1


# ------------------------------------------------------------------ bench
def run_bench(args: argparse.Namespace) -> int:
    snapshot = run_lint_bench(tuple(args.paths), out=args.out, repeats=args.repeats)
    print(
        f"linted {snapshot['files_checked']} files / {snapshot['total_lines']} lines "
        f"in {snapshot['wall_seconds_best'] * 1000:.1f} ms (best of {args.repeats}); "
        f"wrote {args.out}"
    )
    return 0


def run_kernel_bench_cli(args: argparse.Namespace) -> int:
    snapshot = run_kernel_bench(out=args.out, repeats=args.repeats)
    print(
        f"patch stage {snapshot['patch_stage_ms_loop']:.2f} ms loop -> "
        f"{snapshot['patch_stage_ms_vectorized']:.2f} ms vectorized "
        f"({snapshot['patch_stage_speedup']:.2f}x); "
        f"forward {snapshot['forward_speedup']:.2f}x; "
        f"batched {snapshot['batched_images_per_second']:.1f} img/s; "
        f"wrote {args.out}"
    )
    return 0


def run_stale_bench_cli(args: argparse.Namespace) -> int:
    snapshot = run_stale_halo_bench(out=args.out)
    at4 = next(row for row in snapshot["scaling"] if row["devices"] == 4)
    print(
        f"4-device pipelined makespan {at4['blocking_pipelined_ms']:.2f} ms blocking -> "
        f"{at4['stale_pipelined_ms']:.2f} ms stale "
        f"({snapshot['stale_speedup_4dev']:.3f}x, "
        f"{snapshot['stale_savings_ms_4dev']:.2f} ms saved); "
        f"verify {snapshot['verify_speedup_slowlink_4dev']:.3f}x on the slow link; "
        f"verify execution bit-identical over "
        f"{snapshot['execution']['displaced_branch_rounds']} displaced branch rounds; "
        f"wrote {args.out}"
    )
    return 0


def run_perfgate(args: argparse.Namespace) -> int:
    current = json.loads(Path(args.current).read_text())
    baseline = json.loads(Path(args.baseline).read_text())
    failures = compare_snapshots(current, baseline, max_regression=args.max_regression)
    for metric in baseline.get("gate_metrics", []):
        base_value, value = baseline.get(metric), current.get(metric)
        if isinstance(base_value, (int, float)) and isinstance(value, (int, float)):
            print(f"{metric}: baseline {base_value:.3f} -> fresh {value:.3f}")
    if failures:
        for failure in failures:
            print(f"PERF REGRESSION {failure}")
        return 1
    print(f"perfgate: OK (tolerance {args.max_regression * 100:.0f}%)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint_parser = sub.add_parser("lint", help="run the project lint rules")
    lint_parser.add_argument("paths", nargs="*", default=["src"])
    lint_parser.add_argument("--format", choices=("text", "json"), default="text")
    lint_parser.add_argument("--baseline", default="lint_baseline.json")
    lint_parser.add_argument(
        "--write-baseline", action="store_true", help="rewrite the baseline file"
    )
    lint_parser.add_argument(
        "--no-baseline", action="store_true", help="ignore any baseline file"
    )
    lint_parser.add_argument(
        "--rules", default=None, help="comma-separated rule codes (default: all)"
    )
    lint_parser.set_defaults(func=run_lint)

    race_parser = sub.add_parser("racecheck", help="runtime race/lock-order check")
    race_parser.add_argument("--threads", type=int, default=4)
    race_parser.add_argument("--iterations", type=int, default=50)
    race_parser.set_defaults(func=run_racecheck)

    bench_parser = sub.add_parser("bench", help="time the linter, write BENCH_devtools.json")
    bench_parser.add_argument("paths", nargs="*", default=["src"])
    bench_parser.add_argument("--out", default="BENCH_devtools.json")
    bench_parser.add_argument("--repeats", type=int, default=3)
    bench_parser.set_defaults(func=run_bench)

    kernel_parser = sub.add_parser(
        "kernel-bench", help="measure the patch kernels, write BENCH_kernels.json"
    )
    kernel_parser.add_argument("--out", default="BENCH_kernels.json")
    kernel_parser.add_argument("--repeats", type=int, default=5)
    kernel_parser.set_defaults(func=run_kernel_bench_cli)

    stale_parser = sub.add_parser(
        "stale-bench",
        help="measure the displaced pipeline schedule, write BENCH_stale_halo.json",
    )
    stale_parser.add_argument("--out", default="BENCH_stale_halo.json")
    stale_parser.set_defaults(func=run_stale_bench_cli)

    gate_parser = sub.add_parser(
        "perfgate", help="fail if a fresh snapshot regressed vs the baseline"
    )
    gate_parser.add_argument("current", help="freshly measured snapshot JSON")
    gate_parser.add_argument("--baseline", default="BENCH_kernels.json")
    gate_parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="allowed fractional drop per gated metric (default 0.20)",
    )
    gate_parser.set_defaults(func=run_perfgate)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
