"""Weight initializers for the NumPy CNN framework.

Every initializer takes an explicit ``np.random.Generator``; model builders
thread one generator through all their layers so a model's weights are a pure
function of its seed.  When no generator is passed, each call falls back to a
*fresh* deterministic stream (seed 0) — unlike the shared module-level stream
this package used to keep, the values drawn can never depend on how many
layers other code happened to build first (the root cause of an
order-dependent flaky training test, now REP001 in ``repro.devtools.lint``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["kaiming_uniform", "xavier_uniform", "normal_init", "default_init_rng"]

#: Seed of the per-call fallback stream used when no generator is injected.
DEFAULT_INIT_SEED = 0


def default_init_rng() -> np.random.Generator:
    """A fresh deterministic generator for callers that did not inject one."""
    return np.random.default_rng(DEFAULT_INIT_SEED)


def kaiming_uniform(
    shape: tuple[int, ...], fan_in: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Kaiming/He uniform initialization suited to ReLU-family networks."""
    rng = rng if rng is not None else default_init_rng()
    bound = np.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(
    shape: tuple[int, ...], fan_in: int, fan_out: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Xavier/Glorot uniform initialization."""
    rng = rng if rng is not None else default_init_rng()
    bound = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def normal_init(
    shape: tuple[int, ...], std: float = 0.01, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Zero-mean Gaussian initialization with a configurable std."""
    rng = rng if rng is not None else default_init_rng()
    return (rng.standard_normal(size=shape) * std).astype(np.float32)
