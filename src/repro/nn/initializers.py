"""Weight initializers for the NumPy CNN framework."""

from __future__ import annotations

import numpy as np

__all__ = ["kaiming_uniform", "xavier_uniform", "normal_init"]

_DEFAULT_RNG = np.random.default_rng(0)


def kaiming_uniform(
    shape: tuple[int, ...], fan_in: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Kaiming/He uniform initialization suited to ReLU-family networks."""
    rng = rng if rng is not None else _DEFAULT_RNG
    bound = np.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(
    shape: tuple[int, ...], fan_in: int, fan_out: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Xavier/Glorot uniform initialization."""
    rng = rng if rng is not None else _DEFAULT_RNG
    bound = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def normal_init(
    shape: tuple[int, ...], std: float = 0.01, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Zero-mean Gaussian initialization with a configurable std."""
    rng = rng if rng is not None else _DEFAULT_RNG
    return (rng.standard_normal(size=shape) * std).astype(np.float32)
