"""Layer classes for the NumPy CNN framework.

Each layer is a small stateful object with a uniform interface:

``forward(*inputs)``
    Compute the layer output and cache whatever the backward pass needs.
``backward(grad_out)``
    Return the gradient(s) with respect to the input(s) and accumulate
    parameter gradients in ``self.grads``.
``output_shape(*input_shapes)``
    Shape inference on ``(C, H, W)`` tuples (no batch dimension).
``macs(*input_shapes)``
    Exact multiply-accumulate count per sample, the quantity BitOPs and the
    MCU latency model are derived from.
``spatial_params()``
    ``(kernel, stride, padding)`` triple used by the receptive-field / halo
    arithmetic of the patch-based inference substrate.

Layers that carry parameters expose them through ``self.params`` (a dict of
ndarrays) so quantizers, serializers and optimizers can treat all layers
uniformly.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .initializers import kaiming_uniform

__all__ = [
    "Layer",
    "Conv2d",
    "DepthwiseConv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "ReLU6",
    "LeakyReLU",
    "Sigmoid",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool",
    "Flatten",
    "Add",
    "Concat",
    "Identity",
    "Dropout",
    "Softmax",
    "Pad2d",
]

Shape = tuple[int, ...]


class Layer:
    """Base class for all layers."""

    #: True for layers whose output is an activation feature map that the
    #: quantization search may assign a bitwidth to.
    produces_feature_map: bool = True

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}
        self.training: bool = False
        # Per-forward backward-pass scratch, overwritten on every forward and
        # cleared by the serving layer — not a memo.
        self._cache: dict[str, object] = {}  # repro: noqa[REP004]

    # ------------------------------------------------------------------ API
    def forward(self, *inputs: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray):
        raise NotImplementedError

    def output_shape(self, *input_shapes: Shape) -> Shape:
        raise NotImplementedError

    def macs(self, *input_shapes: Shape) -> int:
        """Multiply-accumulate operations per sample (0 for free ops)."""
        return 0

    def spatial_params(self) -> tuple[int, int, int]:
        """``(kernel, stride, padding)`` for receptive-field propagation."""
        return (1, 1, 0)

    # -------------------------------------------------------------- helpers
    def param_count(self) -> int:
        """Total number of learnable scalars in this layer."""
        return int(sum(p.size for p in self.params.values()))

    def zero_grad(self) -> None:
        """Reset accumulated parameter gradients."""
        for key, value in self.params.items():
            self.grads[key] = np.zeros_like(value)

    def train(self, mode: bool = True) -> None:
        self.training = mode

    def __call__(self, *inputs: np.ndarray) -> np.ndarray:
        return self.forward(*inputs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class Conv2d(Layer):
    """Standard 2-D convolution with square kernels and symmetric padding."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if in_channels <= 0 or out_channels <= 0 or kernel_size <= 0:
            raise ValueError("channels and kernel_size must be positive")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.params["weight"] = kaiming_uniform(
            (out_channels, in_channels, kernel_size, kernel_size), fan_in, rng
        )
        if bias:
            self.params["bias"] = np.zeros(out_channels, dtype=np.float32)
        self.zero_grad()

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, col = F.conv2d_forward(
            x, self.params["weight"], self.params.get("bias"), self.stride, self.padding
        )
        self._cache = {"x_shape": x.shape, "col": col}
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_in, grad_w, grad_b = F.conv2d_backward(
            grad_out,
            self._cache["x_shape"],
            self._cache["col"],
            self.params["weight"],
            self.stride,
            self.padding,
        )
        self.grads["weight"] += grad_w
        if "bias" in self.params:
            self.grads["bias"] += grad_b
        return grad_in

    def output_shape(self, input_shape: Shape) -> Shape:
        c, h, w = input_shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} input channels, got {c}")
        oh = F.conv_output_size(h, self.kernel_size, self.stride, self.padding)
        ow = F.conv_output_size(w, self.kernel_size, self.stride, self.padding)
        return (self.out_channels, oh, ow)

    def macs(self, input_shape: Shape) -> int:
        _, oh, ow = self.output_shape(input_shape)
        return (
            self.out_channels
            * oh
            * ow
            * self.in_channels
            * self.kernel_size
            * self.kernel_size
        )

    def spatial_params(self) -> tuple[int, int, int]:
        return (self.kernel_size, self.stride, self.padding)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
            f"s={self.stride}, p={self.padding})"
        )


class DepthwiseConv2d(Layer):
    """Depthwise convolution: one filter per channel, no cross-channel mixing."""

    def __init__(
        self,
        channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.channels = channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = kernel_size * kernel_size
        self.params["weight"] = kaiming_uniform(
            (channels, kernel_size, kernel_size), fan_in, rng
        )
        if bias:
            self.params["bias"] = np.zeros(channels, dtype=np.float32)
        self.zero_grad()

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, windows = F.depthwise_conv2d_forward(
            x, self.params["weight"], self.params.get("bias"), self.stride, self.padding
        )
        self._cache = {"x_shape": x.shape, "windows": windows}
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_in, grad_w, grad_b = F.depthwise_conv2d_backward(
            grad_out,
            self._cache["x_shape"],
            self._cache["windows"],
            self.params["weight"],
            self.stride,
            self.padding,
        )
        self.grads["weight"] += grad_w
        if "bias" in self.params:
            self.grads["bias"] += grad_b
        return grad_in

    def output_shape(self, input_shape: Shape) -> Shape:
        c, h, w = input_shape
        if c != self.channels:
            raise ValueError(f"expected {self.channels} channels, got {c}")
        oh = F.conv_output_size(h, self.kernel_size, self.stride, self.padding)
        ow = F.conv_output_size(w, self.kernel_size, self.stride, self.padding)
        return (c, oh, ow)

    def macs(self, input_shape: Shape) -> int:
        c, oh, ow = self.output_shape(input_shape)
        return c * oh * ow * self.kernel_size * self.kernel_size

    def spatial_params(self) -> tuple[int, int, int]:
        return (self.kernel_size, self.stride, self.padding)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DepthwiseConv2d({self.channels}, k={self.kernel_size}, "
            f"s={self.stride}, p={self.padding})"
        )


class Linear(Layer):
    """Fully connected layer operating on flattened ``(N, features)`` input."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.params["weight"] = kaiming_uniform((out_features, in_features), in_features, rng)
        if bias:
            self.params["bias"] = np.zeros(out_features, dtype=np.float32)
        self.zero_grad()

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache = {"x": x}
        out = x @ self.params["weight"].T
        if "bias" in self.params:
            out = out + self.params["bias"]
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x = self._cache["x"]
        self.grads["weight"] += grad_out.T @ x
        if "bias" in self.params:
            self.grads["bias"] += grad_out.sum(axis=0)
        return grad_out @ self.params["weight"]

    def output_shape(self, input_shape: Shape) -> Shape:
        flat = int(np.prod(input_shape))
        if flat != self.in_features:
            raise ValueError(f"expected {self.in_features} features, got {flat}")
        return (self.out_features,)

    def macs(self, input_shape: Shape) -> int:
        return self.in_features * self.out_features

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Linear({self.in_features}, {self.out_features})"


class BatchNorm2d(Layer):
    """Batch normalization over the channel axis of NCHW tensors.

    In training mode the batch statistics are used and running statistics are
    updated; in inference mode the running statistics are used, which makes
    the layer a per-channel affine transform (the form an MCU deployment would
    fold into the preceding convolution).
    """

    produces_feature_map = False

    def __init__(self, channels: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.channels = channels
        self.momentum = momentum
        self.eps = eps
        self.params["gamma"] = np.ones(channels, dtype=np.float32)
        self.params["beta"] = np.zeros(channels, dtype=np.float32)
        self.running_mean = np.zeros(channels, dtype=np.float32)
        self.running_var = np.ones(channels, dtype=np.float32)
        self.zero_grad()

    def forward(self, x: np.ndarray) -> np.ndarray:
        gamma = self.params["gamma"][None, :, None, None]
        beta = self.params["beta"][None, :, None, None]
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * mean
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * var
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        self._cache = {"x_hat": x_hat, "inv_std": inv_std, "n": x.shape[0] * x.shape[2] * x.shape[3]}
        return gamma * x_hat + beta

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x_hat = self._cache["x_hat"]
        inv_std = self._cache["inv_std"]
        n = self._cache["n"]
        gamma = self.params["gamma"]

        self.grads["gamma"] += (grad_out * x_hat).sum(axis=(0, 2, 3))
        self.grads["beta"] += grad_out.sum(axis=(0, 2, 3))

        if not self.training:
            return grad_out * (gamma * inv_std)[None, :, None, None]

        grad_xhat = grad_out * gamma[None, :, None, None]
        term1 = grad_xhat
        term2 = grad_xhat.mean(axis=(0, 2, 3), keepdims=True)
        term3 = x_hat * (grad_xhat * x_hat).mean(axis=(0, 2, 3), keepdims=True)
        return (term1 - term2 - term3) * inv_std[None, :, None, None]

    def output_shape(self, input_shape: Shape) -> Shape:
        return input_shape

    def fuse_scale_bias(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(scale, bias)`` such that ``y = scale*x + bias`` in eval mode."""
        inv_std = 1.0 / np.sqrt(self.running_var + self.eps)
        scale = self.params["gamma"] * inv_std
        bias = self.params["beta"] - self.running_mean * scale
        return scale, bias

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BatchNorm2d({self.channels})"


class _Activation(Layer):
    """Shared scaffolding for parameter-free elementwise activations."""

    def output_shape(self, input_shape: Shape) -> Shape:
        return input_shape


class ReLU(_Activation):
    """Rectified linear unit."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache = {"mask": x > 0}
        return F.relu(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * self._cache["mask"]


class ReLU6(_Activation):
    """ReLU clipped at 6 (MobileNet-family activation)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache = {"mask": (x > 0) & (x < 6.0)}
        return F.relu6(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * self._cache["mask"]


class LeakyReLU(_Activation):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache = {"mask": x > 0}
        return np.where(x > 0, x, self.negative_slope * x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        mask = self._cache["mask"]
        return np.where(mask, grad_out, self.negative_slope * grad_out)


class Sigmoid(_Activation):
    """Logistic sigmoid."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = F.sigmoid(x)
        self._cache = {"out": out}
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        out = self._cache["out"]
        return grad_out * out * (1.0 - out)


class MaxPool2d(Layer):
    """Max pooling with square windows."""

    def __init__(self, kernel_size: int, stride: int | None = None, padding: int = 0) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, argmax = F.maxpool2d_forward(x, self.kernel_size, self.stride, self.padding)
        self._cache = {"x_shape": x.shape, "argmax": argmax}
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return F.maxpool2d_backward(
            grad_out,
            self._cache["x_shape"],
            self._cache["argmax"],
            self.kernel_size,
            self.stride,
            self.padding,
        )

    def output_shape(self, input_shape: Shape) -> Shape:
        c, h, w = input_shape
        oh = F.conv_output_size(h, self.kernel_size, self.stride, self.padding)
        ow = F.conv_output_size(w, self.kernel_size, self.stride, self.padding)
        return (c, oh, ow)

    def spatial_params(self) -> tuple[int, int, int]:
        return (self.kernel_size, self.stride, self.padding)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MaxPool2d(k={self.kernel_size}, s={self.stride})"


class AvgPool2d(Layer):
    """Average pooling with square windows."""

    def __init__(self, kernel_size: int, stride: int | None = None, padding: int = 0) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache = {"x_shape": x.shape}
        return F.avgpool2d_forward(x, self.kernel_size, self.stride, self.padding)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return F.avgpool2d_backward(
            grad_out, self._cache["x_shape"], self.kernel_size, self.stride, self.padding
        )

    def output_shape(self, input_shape: Shape) -> Shape:
        c, h, w = input_shape
        oh = F.conv_output_size(h, self.kernel_size, self.stride, self.padding)
        ow = F.conv_output_size(w, self.kernel_size, self.stride, self.padding)
        return (c, oh, ow)

    def spatial_params(self) -> tuple[int, int, int]:
        return (self.kernel_size, self.stride, self.padding)


class GlobalAvgPool(Layer):
    """Global average pooling producing an ``(N, C)`` tensor."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache = {"x_shape": x.shape}
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        n, c, h, w = self._cache["x_shape"]
        return np.broadcast_to(grad_out[:, :, None, None], (n, c, h, w)) / (h * w)

    def output_shape(self, input_shape: Shape) -> Shape:
        c = input_shape[0]
        return (c,)


class Flatten(Layer):
    """Flatten all non-batch dimensions."""

    produces_feature_map = False

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache = {"x_shape": x.shape}
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out.reshape(self._cache["x_shape"])

    def output_shape(self, input_shape: Shape) -> Shape:
        return (int(np.prod(input_shape)),)


class Add(Layer):
    """Elementwise residual addition of two inputs."""

    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if a.shape != b.shape:
            raise ValueError(f"Add requires equal shapes, got {a.shape} and {b.shape}")
        return a + b

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return grad_out, grad_out

    def output_shape(self, shape_a: Shape, shape_b: Shape) -> Shape:
        if shape_a != shape_b:
            raise ValueError(f"Add requires equal shapes, got {shape_a} and {shape_b}")
        return shape_a

    def macs(self, shape_a: Shape, shape_b: Shape) -> int:
        return 0


class Concat(Layer):
    """Channel-axis concatenation of two or more inputs."""

    def forward(self, *inputs: np.ndarray) -> np.ndarray:
        self._cache = {"channels": [x.shape[1] for x in inputs]}
        return np.concatenate(inputs, axis=1)

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray, ...]:
        splits = np.cumsum(self._cache["channels"])[:-1]
        return tuple(np.split(grad_out, splits, axis=1))

    def output_shape(self, *input_shapes: Shape) -> Shape:
        h, w = input_shapes[0][1], input_shapes[0][2]
        for shape in input_shapes:
            if shape[1:] != (h, w):
                raise ValueError("Concat requires equal spatial dims")
        return (sum(s[0] for s in input_shapes), h, w)


class Identity(Layer):
    """Pass-through layer (used as a structural placeholder)."""

    produces_feature_map = False

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out

    def output_shape(self, input_shape: Shape) -> Shape:
        return input_shape


class Dropout(Layer):
    """Inverted dropout; a no-op in inference mode.

    Mask randomness is per instance: pass a generator to control it (model
    builders thread one through so sibling dropout layers draw *different*
    mask sequences); without one, the layer lazily creates its own
    deterministic stream on the first training-mode forward — inference-only
    pipelines never allocate RNG state, and no stream is ever shared between
    instances.
    """

    produces_feature_map = False

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = rng

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._cache = {"mask": None}
            return x
        if self._rng is None:
            self._rng = np.random.default_rng(0)
        mask = (self._rng.random(x.shape) >= self.p) / (1.0 - self.p)
        self._cache = {"mask": mask}
        return x * mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        mask = self._cache["mask"]
        return grad_out if mask is None else grad_out * mask

    def output_shape(self, input_shape: Shape) -> Shape:
        return input_shape


class Softmax(Layer):
    """Softmax over the last axis (usually class logits)."""

    produces_feature_map = False

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = F.softmax(x, axis=-1)
        self._cache = {"out": out}
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        out = self._cache["out"]
        dot = (grad_out * out).sum(axis=-1, keepdims=True)
        return out * (grad_out - dot)

    def output_shape(self, input_shape: Shape) -> Shape:
        return input_shape


class Pad2d(Layer):
    """Explicit symmetric zero padding (kept separate for halo experiments)."""

    produces_feature_map = False

    def __init__(self, padding: int) -> None:
        super().__init__()
        self.padding = padding

    def forward(self, x: np.ndarray) -> np.ndarray:
        p = self.padding
        return np.pad(x, [(0, 0), (0, 0), (p, p), (p, p)], mode="constant")

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        p = self.padding
        return grad_out[:, :, p:-p or None, p:-p or None]

    def output_shape(self, input_shape: Shape) -> Shape:
        c, h, w = input_shape
        return (c, h + 2 * self.padding, w + 2 * self.padding)
