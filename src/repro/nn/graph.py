"""Model graph container for the NumPy CNN framework.

A :class:`Graph` is a directed acyclic graph of named :class:`~repro.nn.layers.Layer`
instances.  It supports the operations every other subsystem of the QuantMCU
reproduction needs:

* shape inference and exact per-layer MAC counting *without* executing the
  network (this is how the full-resolution BitOPs / memory / latency numbers of
  the paper's tables are produced);
* forward execution with optional recording of every intermediate activation
  (feature maps feed the entropy estimator of VDQS and the outlier analysis of
  VDPC);
* reverse-mode backpropagation so that small models can be trained end-to-end
  on the synthetic datasets used by the accuracy experiments.

The special node name ``"input"`` always refers to the graph input.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .layers import Layer

__all__ = ["GraphNode", "Graph", "Sequential"]

INPUT_NODE = "input"

Shape = tuple[int, ...]


@dataclass
class GraphNode:
    """A single node of the model graph."""

    name: str
    layer: Layer
    inputs: list[str] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GraphNode({self.name}: {self.layer!r} <- {self.inputs})"


class Graph:
    """A DAG of layers with a single input and a single output.

    Parameters
    ----------
    input_shape:
        ``(C, H, W)`` shape of a single input sample (no batch dimension).
    name:
        Optional human readable model name used in reports.
    """

    def __init__(self, input_shape: Shape, name: str = "model") -> None:
        if len(input_shape) != 3:
            raise ValueError(f"input_shape must be (C, H, W), got {input_shape}")
        self.input_shape: Shape = tuple(int(s) for s in input_shape)
        self.name = name
        self.nodes: dict[str, GraphNode] = {}
        self._order: list[str] = []
        self.output_node: str | None = None
        self._last_added: str = INPUT_NODE

    # ------------------------------------------------------------ building
    def add(
        self,
        layer: Layer,
        inputs: str | list[str] | None = None,
        name: str | None = None,
    ) -> str:
        """Append ``layer`` to the graph and return its node name.

        ``inputs`` defaults to the previously added node (or the graph input
        for the first layer), which makes building sequential chains concise.
        """
        if name is None:
            name = f"{type(layer).__name__.lower()}_{len(self._order)}"
        if name in self.nodes or name == INPUT_NODE:
            raise ValueError(f"duplicate node name {name!r}")
        if inputs is None:
            inputs = [self._last_added]
        elif isinstance(inputs, str):
            inputs = [inputs]
        for src in inputs:
            if src != INPUT_NODE and src not in self.nodes:
                raise ValueError(f"unknown input node {src!r} for {name!r}")
        node = GraphNode(name=name, layer=layer, inputs=list(inputs))
        self.nodes[name] = node
        self._order.append(name)
        self.output_node = name
        self._last_added = name
        return name

    # ----------------------------------------------------------- inspection
    def topological_order(self) -> list[str]:
        """Node names in execution order (insertion order, verified acyclic)."""
        return list(self._order)

    def layers(self) -> list[tuple[str, Layer]]:
        """``(name, layer)`` pairs in execution order."""
        return [(name, self.nodes[name].layer) for name in self._order]

    def consumers(self) -> dict[str, list[str]]:
        """Map from node name to the names of nodes that consume its output."""
        result: dict[str, list[str]] = {INPUT_NODE: []}
        for name in self._order:
            result.setdefault(name, [])
        for name in self._order:
            for src in self.nodes[name].inputs:
                result[src].append(name)
        return result

    def shapes(self) -> dict[str, Shape]:
        """Per-node output shapes ``(C, H, W)`` (or ``(F,)`` after flatten)."""
        shapes: dict[str, Shape] = {INPUT_NODE: self.input_shape}
        for name in self._order:
            node = self.nodes[name]
            input_shapes = [shapes[src] for src in node.inputs]
            shapes[name] = node.layer.output_shape(*input_shapes)
        return shapes

    def macs(self) -> dict[str, int]:
        """Per-node multiply-accumulate counts for a single sample."""
        shapes = self.shapes()
        result: dict[str, int] = {}
        for name in self._order:
            node = self.nodes[name]
            input_shapes = [shapes[src] for src in node.inputs]
            result[name] = int(node.layer.macs(*input_shapes))
        return result

    def total_macs(self) -> int:
        """Total multiply-accumulates for one forward pass of one sample."""
        return int(sum(self.macs().values()))

    def param_count(self) -> int:
        """Total number of learnable parameters."""
        return int(sum(layer.param_count() for _, layer in self.layers()))

    def feature_map_nodes(self) -> list[str]:
        """Names of nodes whose outputs are quantizable activation feature maps.

        These are the feature maps the paper's VDQS assigns a bitwidth to:
        outputs of convolutions, pooling and elementwise merge layers, i.e.
        every node flagged ``produces_feature_map`` that still has a spatial
        extent.
        """
        shapes = self.shapes()
        names = []
        for name in self._order:
            node = self.nodes[name]
            if node.layer.produces_feature_map and len(shapes[name]) == 3:
                names.append(name)
        return names

    def output_shape(self) -> Shape:
        """Shape of the graph output for a single sample."""
        if self.output_node is None:
            raise ValueError("graph has no layers")
        return self.shapes()[self.output_node]

    # ------------------------------------------------------------ execution
    def forward(
        self, x: np.ndarray, record_activations: bool = False
    ) -> np.ndarray | tuple[np.ndarray, dict[str, np.ndarray]]:
        """Run the network on a batch ``x`` of shape ``(N, C, H, W)``.

        When ``record_activations`` is true a dict mapping node name to the
        activation ndarray is returned alongside the output.
        """
        if self.output_node is None:
            raise ValueError("graph has no layers")
        values: dict[str, np.ndarray] = {INPUT_NODE: x}
        for name in self._order:
            node = self.nodes[name]
            inputs = [values[src] for src in node.inputs]
            values[name] = node.layer.forward(*inputs)
        self._values = values
        output = values[self.output_node]
        if record_activations:
            return output, values
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad_output`` through the graph.

        Must be called immediately after :meth:`forward`.  Parameter gradients
        accumulate in each layer's ``grads`` dict; the gradient with respect to
        the graph input is returned.
        """
        if not hasattr(self, "_values"):
            raise RuntimeError("backward() called before forward()")
        grads: dict[str, np.ndarray] = {self.output_node: grad_output}
        for name in reversed(self._order):
            node = self.nodes[name]
            if name not in grads:
                # Node not on any path to the output (should not happen for
                # well-formed models) - skip it.
                continue
            input_grads = node.layer.backward(grads[name])
            if not isinstance(input_grads, tuple):
                input_grads = (input_grads,)
            if len(input_grads) != len(node.inputs):
                raise RuntimeError(
                    f"layer {name} returned {len(input_grads)} gradients for "
                    f"{len(node.inputs)} inputs"
                )
            for src, g in zip(node.inputs, input_grads):
                if src in grads:
                    grads[src] = grads[src] + g
                else:
                    grads[src] = g
        return grads.get(INPUT_NODE, np.zeros_like(self._values[INPUT_NODE]))

    # ------------------------------------------------------------- training
    def train(self, mode: bool = True) -> None:
        """Switch every layer between training and inference behaviour."""
        for _, layer in self.layers():
            layer.train(mode)

    def eval(self) -> None:
        """Shortcut for ``train(False)``."""
        self.train(False)

    def zero_grad(self) -> None:
        """Reset accumulated parameter gradients of every layer."""
        for _, layer in self.layers():
            layer.zero_grad()

    def parameters(self) -> list[tuple[str, str, np.ndarray]]:
        """``(node_name, param_name, array)`` triples for every parameter."""
        out = []
        for name, layer in self.layers():
            for pname, arr in layer.params.items():
                out.append((name, pname, arr))
        return out

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat copy of every parameter keyed by ``node.param``."""
        return {f"{n}.{p}": arr.copy() for n, p, arr in self.parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameters previously produced by :meth:`state_dict`."""
        for name, layer in self.layers():
            for pname in layer.params:
                key = f"{name}.{pname}"
                if key not in state:
                    raise KeyError(f"missing parameter {key}")
                if state[key].shape != layer.params[pname].shape:
                    raise ValueError(f"shape mismatch for {key}")
                layer.params[pname] = state[key].copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph({self.name}, input={self.input_shape}, nodes={len(self._order)})"


class Sequential(Graph):
    """Convenience subclass for purely sequential models."""

    def __init__(self, input_shape: Shape, layers: list[Layer] | None = None, name: str = "sequential") -> None:
        super().__init__(input_shape, name=name)
        for layer in layers or []:
            self.add(layer)
