"""Low-level numerical primitives for the NumPy CNN framework.

Everything in this module is a pure function operating on ``numpy.ndarray``
objects in NCHW layout.  The layer classes in :mod:`repro.nn.layers` are thin
stateful wrappers around these primitives, which keeps the numerics easy to
test in isolation (see ``tests/nn/test_functional.py``).

The implementation favours clarity over raw speed: convolutions are expressed
through explicit ``im2col``/``col2im`` transformations, the textbook approach
used by most educational frameworks.  The window gathers are fully vectorized
through strided window views (:func:`numpy.lib.stride_tricks.as_strided`, the
mechanism behind ``sliding_window_view``, called directly to skip the
wrapper's per-call overhead) and the ``col2im`` scatter through
:func:`numpy.ufunc.at`; the original
kernel-offset loops survive as :func:`im2col_reference`/:func:`col2im_reference`
— the oracles the equivalence tests compare the vectorized kernels against,
bit for bit.  Bit-identity is exact, not approximate: gathers copy the same
elements into the same positions, and the scatter accumulates each target in
the same ascending kernel-offset order as the reference loop, so no float
operation is reassociated.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import as_strided


def _strided_windows(img: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    """Read-only ``(N, C, out_h, out_w, kh, kw)`` view of sliding windows.

    Equivalent to ``sliding_window_view(img, (kh, kw), axis=(2, 3))`` followed
    by ``[:, :, ::stride, ::stride]`` — same elements at the same positions —
    but built with one direct :func:`numpy.lib.stride_tricks.as_strided` call:
    the convenience wrapper's per-call Python overhead is measurable when the
    patch-stage executes thousands of small convolutions per image.
    """
    n, c, h, w = img.shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    sn, sc, sh, sw = img.strides
    return as_strided(
        img,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )

__all__ = [
    "conv_output_size",
    "im2col",
    "im2col_reference",
    "col2im",
    "col2im_reference",
    "conv2d_forward",
    "conv2d_backward",
    "depthwise_conv2d_forward",
    "depthwise_conv2d_backward",
    "maxpool2d_forward",
    "maxpool2d_backward",
    "avgpool2d_forward",
    "avgpool2d_backward",
    "softmax",
    "log_softmax",
    "relu",
    "relu6",
    "sigmoid",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Return the spatial output size of a convolution/pooling window.

    Parameters
    ----------
    size:
        Input spatial extent (height or width).
    kernel:
        Kernel extent along the same axis.
    stride:
        Stride along the same axis.
    padding:
        Symmetric zero padding added on each side.
    """
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive output size {out} for input={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def im2col(x: np.ndarray, kernel: tuple[int, int], stride: int, padding: int) -> np.ndarray:
    """Unfold sliding windows of ``x`` into a 2-D matrix.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    kernel:
        ``(kh, kw)`` window size.
    stride:
        Window stride (same for both axes).
    padding:
        Symmetric zero padding (same for both axes).

    Returns
    -------
    numpy.ndarray
        Matrix of shape ``(N * out_h * out_w, C * kh * kw)`` whose rows are the
        flattened receptive fields of each output position.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)

    if padding > 0:
        img = np.pad(x, [(0, 0), (0, 0), (padding, padding), (padding, padding)], mode="constant")
    else:
        img = x

    # One strided gather instead of a Python loop over kernel offsets.  The
    # reshape copies the windows into exactly the row/column order the loop
    # reference produces, so downstream matmuls see a bit-identical matrix.
    windows = _strided_windows(img, kh, kw, stride)
    return windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * out_h * out_w, c * kh * kw)


def im2col_reference(
    x: np.ndarray, kernel: tuple[int, int], stride: int, padding: int
) -> np.ndarray:
    """Loop-based oracle for :func:`im2col` (kept for the equivalence tests)."""
    n, c, h, w = x.shape
    kh, kw = kernel
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)

    if padding > 0:
        img = np.pad(x, [(0, 0), (0, 0), (padding, padding), (padding, padding)], mode="constant")
    else:
        img = x

    col = np.empty((n, c, kh, kw, out_h, out_w), dtype=x.dtype)
    for i in range(kh):  # repro: noqa[REP007] - the loop oracle itself
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            col[:, :, i, j, :, :] = img[:, :, i:i_max:stride, j:j_max:stride]
    return col.transpose(0, 4, 5, 1, 2, 3).reshape(n * out_h * out_w, c * kh * kw)


def col2im(
    col: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel: tuple[int, int],
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold a column matrix produced by :func:`im2col` back into an image.

    Overlapping positions are accumulated, which makes this the adjoint of
    :func:`im2col` and therefore the correct operation for convolution
    backpropagation.
    """
    n, c, h, w = input_shape
    kh, kw = kernel
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)

    col6 = col.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    img = np.zeros((n, c, h + 2 * padding + stride - 1, w + 2 * padding + stride - 1), dtype=col.dtype)
    # Scatter-add all kernel offsets at once.  Index order is (i, j, oh, ow)
    # flattened C-style, so every overlapping target accumulates its
    # contributions in ascending (i, j) order — the same float addition order
    # as the loop reference, hence bit-identical results.
    i = np.arange(kh)[:, None, None, None]
    j = np.arange(kw)[None, :, None, None]
    oh = np.arange(out_h)[None, None, :, None] * stride
    ow = np.arange(out_w)[None, None, None, :] * stride
    rows = np.broadcast_to(i + oh, (kh, kw, out_h, out_w)).reshape(-1)
    cols = np.broadcast_to(j + ow, (kh, kw, out_h, out_w)).reshape(-1)
    np.add.at(img, (slice(None), slice(None), rows, cols), col6.reshape(n, c, -1))
    return img[:, :, padding : padding + h, padding : padding + w]


def col2im_reference(
    col: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel: tuple[int, int],
    stride: int,
    padding: int,
) -> np.ndarray:
    """Loop-based oracle for :func:`col2im` (kept for the equivalence tests)."""
    n, c, h, w = input_shape
    kh, kw = kernel
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)

    col6 = col.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    img = np.zeros((n, c, h + 2 * padding + stride - 1, w + 2 * padding + stride - 1), dtype=col.dtype)
    for i in range(kh):  # repro: noqa[REP007] - the loop oracle itself
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            img[:, :, i:i_max:stride, j:j_max:stride] += col6[:, :, i, j, :, :]
    return img[:, :, padding : padding + h, padding : padding + w]


def conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    padding: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Standard 2-D convolution.

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, H, W)``.
    weight:
        Filters of shape ``(C_out, C_in, kh, kw)``.
    bias:
        Optional per-output-channel bias of shape ``(C_out,)``.

    Returns
    -------
    (output, col)
        ``output`` has shape ``(N, C_out, out_h, out_w)``.  ``col`` is the
        im2col matrix, returned so the backward pass can reuse it.
    """
    n = x.shape[0]
    c_out, _, kh, kw = weight.shape
    out_h = conv_output_size(x.shape[2], kh, stride, padding)
    out_w = conv_output_size(x.shape[3], kw, stride, padding)

    col = im2col(x, (kh, kw), stride, padding)
    w_mat = weight.reshape(c_out, -1)
    out = col @ w_mat.T
    if bias is not None:
        out = out + bias
    out = out.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)
    return out, col


def conv2d_backward(
    grad_out: np.ndarray,
    x_shape: tuple[int, int, int, int],
    col: np.ndarray,
    weight: np.ndarray,
    stride: int,
    padding: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward pass of :func:`conv2d_forward`.

    Returns ``(grad_input, grad_weight, grad_bias)``.
    """
    c_out, c_in, kh, kw = weight.shape
    n, _, out_h, out_w = grad_out.shape

    grad_mat = grad_out.transpose(0, 2, 3, 1).reshape(n * out_h * out_w, c_out)
    grad_weight = (grad_mat.T @ col).reshape(c_out, c_in, kh, kw)
    grad_bias = grad_mat.sum(axis=0)
    grad_col = grad_mat @ weight.reshape(c_out, -1)
    grad_input = col2im(grad_col, x_shape, (kh, kw), stride, padding)
    return grad_input, grad_weight, grad_bias


def _depthwise_windows(x: np.ndarray, kernel: tuple[int, int], stride: int, padding: int) -> np.ndarray:
    """Return sliding windows of shape ``(N, C, kh*kw, out_h*out_w)``."""
    n, c, h, w = x.shape
    kh, kw = kernel
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    if padding > 0:
        img = np.pad(x, [(0, 0), (0, 0), (padding, padding), (padding, padding)], mode="constant")
    else:
        img = x
    windows = _strided_windows(img, kh, kw, stride)
    # (n, c, out_h, out_w, kh, kw) -> (n, c, kh, kw, out_h, out_w): the same
    # element order the loop gather produced, so reductions over the window
    # axis see identical operand sequences.
    windows = windows.transpose(0, 1, 4, 5, 2, 3)
    return windows.reshape(n, c, kh * kw, out_h * out_w)


def depthwise_conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    padding: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Depthwise (per-channel) 2-D convolution.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    weight:
        Per-channel filters of shape ``(C, kh, kw)``.
    bias:
        Optional per-channel bias of shape ``(C,)``.

    Returns
    -------
    (output, windows)
        ``output`` has shape ``(N, C, out_h, out_w)``; ``windows`` is kept for
        the backward pass.
    """
    n, c, h, w = x.shape
    c_w, kh, kw = weight.shape
    if c_w != c:
        raise ValueError(f"depthwise weight has {c_w} channels, input has {c}")
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)

    windows = _depthwise_windows(x, (kh, kw), stride, padding)
    w_flat = weight.reshape(c, kh * kw, 1)
    out = (windows * w_flat).sum(axis=2)
    if bias is not None:
        out = out + bias[None, :, None]
    return out.reshape(n, c, out_h, out_w), windows


def depthwise_conv2d_backward(
    grad_out: np.ndarray,
    x_shape: tuple[int, int, int, int],
    windows: np.ndarray,
    weight: np.ndarray,
    stride: int,
    padding: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward pass of :func:`depthwise_conv2d_forward`."""
    n, c, out_h, out_w = grad_out.shape
    c_w, kh, kw = weight.shape
    grad_flat = grad_out.reshape(n, c, 1, out_h * out_w)

    grad_weight = (grad_flat * windows).sum(axis=(0, 3)).reshape(c_w, kh, kw)
    grad_bias = grad_out.sum(axis=(0, 2, 3))

    # Gradient w.r.t. the input: scatter grad * weight back through the windows.
    grad_windows = grad_flat * weight.reshape(1, c, kh * kw, 1)
    # Reuse col2im by arranging to (N*oh*ow, C*kh*kw).
    grad_col = grad_windows.reshape(n, c, kh * kw, out_h, out_w)
    grad_col = grad_col.transpose(0, 3, 4, 1, 2).reshape(n * out_h * out_w, c * kh * kw)
    grad_input = col2im(grad_col, x_shape, (kh, kw), stride, padding)
    return grad_input, grad_weight, grad_bias


def maxpool2d_forward(
    x: np.ndarray, kernel: int, stride: int, padding: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Max pooling.  Returns ``(output, argmax)`` for the backward pass."""
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    windows = _depthwise_windows(x, (kernel, kernel), stride, padding)
    argmax = windows.argmax(axis=2)
    out = windows.max(axis=2).reshape(n, c, out_h, out_w)
    return out, argmax


def maxpool2d_backward(
    grad_out: np.ndarray,
    x_shape: tuple[int, int, int, int],
    argmax: np.ndarray,
    kernel: int,
    stride: int,
    padding: int = 0,
) -> np.ndarray:
    """Backward pass of :func:`maxpool2d_forward`."""
    n, c, out_h, out_w = grad_out.shape
    k2 = kernel * kernel
    grad_windows = np.zeros((n, c, k2, out_h * out_w), dtype=grad_out.dtype)
    flat = grad_out.reshape(n, c, out_h * out_w)
    n_idx, c_idx, p_idx = np.meshgrid(
        np.arange(n), np.arange(c), np.arange(out_h * out_w), indexing="ij"
    )
    grad_windows[n_idx, c_idx, argmax, p_idx] = flat
    grad_col = grad_windows.reshape(n, c, k2, out_h, out_w)
    grad_col = grad_col.transpose(0, 3, 4, 1, 2).reshape(n * out_h * out_w, c * k2)
    return col2im(grad_col, x_shape, (kernel, kernel), stride, padding)


def avgpool2d_forward(x: np.ndarray, kernel: int, stride: int, padding: int = 0) -> np.ndarray:
    """Average pooling."""
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    windows = _depthwise_windows(x, (kernel, kernel), stride, padding)
    return windows.mean(axis=2).reshape(n, c, out_h, out_w)


def avgpool2d_backward(
    grad_out: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int = 0,
) -> np.ndarray:
    """Backward pass of :func:`avgpool2d_forward`."""
    n, c, out_h, out_w = grad_out.shape
    k2 = kernel * kernel
    grad_windows = np.repeat(grad_out.reshape(n, c, 1, out_h * out_w), k2, axis=2) / k2
    grad_col = grad_windows.reshape(n, c, k2, out_h, out_w)
    grad_col = grad_col.transpose(0, 3, 4, 1, 2).reshape(n * out_h * out_w, c * k2)
    return col2im(grad_col, x_shape, (kernel, kernel), stride, padding)


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def relu6(x: np.ndarray) -> np.ndarray:
    """ReLU clipped at 6, the activation used by MobileNet-family networks."""
    return np.clip(x, 0.0, 6.0)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out.astype(x.dtype, copy=False)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    shifted = x - x.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
