"""Losses, optimizers and a small training loop.

The QuantMCU paper never trains networks as part of the method (that is the
point of VDQS: entropy replaces retraining), but the reproduction still needs
trained models so that "accuracy after quantization" is a meaningful number on
the synthetic datasets.  This module provides the minimum viable training
stack: softmax cross-entropy, SGD with momentum, Adam, and a ``fit`` helper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from . import functional as F
from .graph import Graph

__all__ = [
    "softmax_cross_entropy",
    "SGD",
    "Adam",
    "TrainingHistory",
    "fit",
    "evaluate_top1",
    "recalibrate_batchnorm",
]


def softmax_cross_entropy(logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean softmax cross-entropy loss and its gradient w.r.t. the logits.

    Parameters
    ----------
    logits:
        ``(N, num_classes)`` raw scores.
    labels:
        ``(N,)`` integer class labels.
    """
    n = logits.shape[0]
    log_probs = F.log_softmax(logits, axis=-1)
    loss = -float(log_probs[np.arange(n), labels].mean())
    grad = F.softmax(logits, axis=-1)
    grad[np.arange(n), labels] -= 1.0
    return loss, grad / n


class _Optimizer:
    """Base class holding references to the graph's parameters."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        self.graph.zero_grad()


class SGD(_Optimizer):
    """Stochastic gradient descent with classical momentum and weight decay."""

    def __init__(
        self,
        graph: Graph,
        lr: float = 0.1,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(graph)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[tuple[str, str], np.ndarray] = {}

    def step(self) -> None:
        for name, layer in self.graph.layers():
            for pname, param in layer.params.items():
                grad = layer.grads[pname]
                if self.weight_decay:
                    grad = grad + self.weight_decay * param
                key = (name, pname)
                vel = self._velocity.get(key)
                if vel is None:
                    vel = np.zeros_like(param)
                vel = self.momentum * vel - self.lr * grad
                self._velocity[key] = vel
                layer.params[pname] = param + vel


class Adam(_Optimizer):
    """Adam optimizer."""

    def __init__(
        self,
        graph: Graph,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(graph)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: dict[tuple[str, str], np.ndarray] = {}
        self._v: dict[tuple[str, str], np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        for name, layer in self.graph.layers():
            for pname, param in layer.params.items():
                grad = layer.grads[pname]
                if self.weight_decay:
                    grad = grad + self.weight_decay * param
                key = (name, pname)
                m = self._m.get(key, np.zeros_like(param))
                v = self._v.get(key, np.zeros_like(param))
                m = self.beta1 * m + (1 - self.beta1) * grad
                v = self.beta2 * v + (1 - self.beta2) * grad * grad
                self._m[key] = m
                self._v[key] = v
                m_hat = m / (1 - self.beta1**self._t)
                v_hat = v / (1 - self.beta2**self._t)
                layer.params[pname] = param - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


@dataclass
class TrainingHistory:
    """Per-epoch loss and accuracy recorded by :func:`fit`."""

    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)

    @property
    def final_accuracy(self) -> float:
        return self.accuracies[-1] if self.accuracies else 0.0


def recalibrate_batchnorm(
    graph: Graph, images: np.ndarray, batch_size: int = 64, max_batches: int = 8
) -> None:
    """Re-estimate BatchNorm running statistics with cumulative averaging.

    With only a few hundred optimizer steps the exponentially averaged running
    statistics lag the final weights badly, which tanks inference-mode
    accuracy.  This pass resets them and replays a few batches in training
    mode with a cumulative-average momentum, the standard post-training BN
    recalibration trick.
    """
    from .layers import BatchNorm2d

    bn_layers = [layer for _, layer in graph.layers() if isinstance(layer, BatchNorm2d)]
    if not bn_layers:
        return
    for layer in bn_layers:
        layer.running_mean = np.zeros_like(layer.running_mean)
        layer.running_var = np.ones_like(layer.running_var)
    graph.train(True)
    num_batches = min(max_batches, max(1, len(images) // batch_size))
    for batch_idx in range(num_batches):
        momentum = 1.0 / (batch_idx + 1)
        for layer in bn_layers:
            layer.momentum = momentum
        batch = images[batch_idx * batch_size : (batch_idx + 1) * batch_size]
        graph.forward(batch)
    for layer in bn_layers:
        layer.momentum = 0.1
    graph.train(False)


def _iterate_batches(
    images: np.ndarray, labels: np.ndarray, batch_size: int, rng: np.random.Generator
):
    indices = rng.permutation(len(images))
    for start in range(0, len(images), batch_size):
        idx = indices[start : start + batch_size]
        yield images[idx], labels[idx]


def fit(
    graph: Graph,
    images: np.ndarray,
    labels: np.ndarray,
    epochs: int = 5,
    batch_size: int = 32,
    optimizer: _Optimizer | None = None,
    seed: int = 0,
    verbose: bool = False,
) -> TrainingHistory:
    """Train ``graph`` with softmax cross-entropy on a classification dataset.

    Returns a :class:`TrainingHistory` with the per-epoch mean loss and
    training accuracy.
    """
    rng = np.random.default_rng(seed)
    opt = optimizer if optimizer is not None else Adam(graph, lr=2e-3)
    history = TrainingHistory()
    graph.train(True)
    for epoch in range(epochs):
        epoch_losses = []
        correct = 0
        for batch_x, batch_y in _iterate_batches(images, labels, batch_size, rng):
            opt.zero_grad()
            logits = graph.forward(batch_x)
            loss, grad = softmax_cross_entropy(logits, batch_y)
            graph.backward(grad)
            opt.step()
            epoch_losses.append(loss)
            correct += int((logits.argmax(axis=-1) == batch_y).sum())
        acc = correct / len(images)
        history.losses.append(float(np.mean(epoch_losses)))
        history.accuracies.append(acc)
        if verbose:  # pragma: no cover - console output only
            print(f"epoch {epoch + 1}/{epochs}: loss={history.losses[-1]:.4f} acc={acc:.3f}")
    recalibrate_batchnorm(graph, images, batch_size=max(batch_size, 32))
    graph.train(False)
    return history


def evaluate_top1(graph: Graph, images: np.ndarray, labels: np.ndarray, batch_size: int = 64) -> float:
    """Top-1 accuracy of ``graph`` on a labelled dataset."""
    graph.eval()
    correct = 0
    for start in range(0, len(images), batch_size):
        batch = images[start : start + batch_size]
        logits = graph.forward(batch)
        correct += int((logits.argmax(axis=-1) == labels[start : start + batch_size]).sum())
    return correct / len(images)
