"""One execution policy + one shared resource runtime for the whole stack.

``repro.runtime`` is the architectural seam separating *what* to execute
(plans, pipelines, hooks) from *how* (placement, backend, freshness) and
*with which resources* (pools, fork workers, shared memory):

* :class:`ExecutionPolicy` — a single validated, immutable description of
  how to execute: placement (:func:`local` | :func:`threads` |
  :func:`cluster`), kernel backend, freshness tier — replacing the scattered
  ``parallel_patches``/``cluster``/``backend``/``accuracy_mode`` keyword
  plumbing (kept as deprecated shims through
  :meth:`ExecutionPolicy.resolve`).
* :class:`Runtime` — a shared, thread-safe resource registry owning thread
  pools, fork pools and shared-memory segments, handing out leased handles
  so executors stop privately constructing pools.  Two engines given one
  runtime share one pool set; one :meth:`Runtime.close` releases everything.

Consumers: ``InferenceEngine(policy=..., runtime=...)``,
``CompiledPipeline.executor/infer/open_stream(policy=..., runtime=...)``,
``PipelineParallelScheduler(policy=...)``, and every executor's
``runtime=`` parameter.
"""

from .policy import (
    FRESHNESS_TIERS,
    PLACEMENT_KINDS,
    ExecutionPolicy,
    Placement,
    cluster,
    local,
    threads,
)
from .resources import Runtime, RuntimeClosed, RuntimeStats, ThreadPoolLease, attach_segment

__all__ = [
    "ExecutionPolicy",
    "FRESHNESS_TIERS",
    "PLACEMENT_KINDS",
    "Placement",
    "Runtime",
    "RuntimeClosed",
    "RuntimeStats",
    "ThreadPoolLease",
    "attach_segment",
    "cluster",
    "local",
    "threads",
]
