"""Execution policies: one validated description of *how* to execute.

Before this module existed, every layer of the execution stack grew its own
configuration surface: ``InferenceEngine`` juggled mutually exclusive
``parallel_patches``/``cluster`` knobs, ``CompiledPipeline.infer`` took
``parallel``/``max_workers``/``cluster``, streams took
``accuracy_mode``/``max_stale_frames``/``drift_sample_every`` strings, and
backend selection was split between ``backend=`` arguments and the
``REPRO_BACKEND`` environment variable.  :class:`ExecutionPolicy` folds all of
that into one immutable value with three orthogonal axes:

placement
    *Where* branches run: :func:`local` (the calling thread),
    :func:`threads` (the patch-parallel worker pool), or :func:`cluster`
    (sharded across simulated devices).
backend
    *How* a branch chunk is computed: ``loop`` | ``vectorized`` |
    ``multiprocess`` (see :mod:`repro.backend`); ``None`` defers to the
    pipeline default and ultimately ``REPRO_BACKEND``.
tier
    *How fresh* the served result must be: ``exact`` (bit-identical, the
    default), ``displaced`` (pipeline-parallel rounds start from the previous
    micro-batch's frame, verify-and-patched back to bit-identity), or
    ``stale_halo`` (the explicit approximate tier with bounded per-branch
    staleness and drift sampling).

:meth:`ExecutionPolicy.resolve` is the single mapper from the legacy keyword
surface onto policies — every invalid-combination check (e.g. the historical
``parallel_patches`` × ``cluster`` ValueError from ``serving/engine.py``)
lives here and nowhere else.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, replace

from ..hardware.cluster import ClusterSpec

__all__ = [
    "FRESHNESS_TIERS",
    "PLACEMENT_KINDS",
    "ExecutionPolicy",
    "Placement",
    "cluster",
    "local",
    "threads",
]

PLACEMENT_KINDS = ("local", "threads", "cluster")
FRESHNESS_TIERS = ("exact", "displaced", "stale_halo")

#: Sentinel distinguishing "kwarg not passed" from an explicit value, so the
#: legacy shims warn only when a caller actually used the old surface.
_UNSET = object()


@dataclass(frozen=True)
class Placement:
    """Where branch work runs; build one with :func:`local` /
    :func:`threads` / :func:`cluster` rather than directly."""

    kind: str = "local"
    max_workers: int | None = None
    cluster: ClusterSpec | None = None

    def __post_init__(self) -> None:
        if self.kind not in PLACEMENT_KINDS:
            raise ValueError(
                f"placement kind must be one of {PLACEMENT_KINDS}, got {self.kind!r}"
            )
        if self.kind == "cluster":
            if self.cluster is None:
                raise ValueError("cluster placement requires a ClusterSpec")
            if not isinstance(self.cluster, ClusterSpec):
                raise TypeError(
                    f"cluster placement takes a ClusterSpec, got {type(self.cluster).__name__}"
                )
        elif self.cluster is not None:
            raise ValueError(f"{self.kind!r} placement does not take a cluster")
        if self.max_workers is not None:
            if self.kind != "threads":
                raise ValueError(f"{self.kind!r} placement does not take max_workers")
            if self.max_workers < 1:
                raise ValueError("max_workers must be >= 1")

    @property
    def cache_key(self) -> tuple:
        """Hashable identity for executor caches."""
        if self.kind == "cluster":
            return ("cluster", self.cluster.cache_key)
        return (self.kind, self.max_workers)


def local() -> Placement:
    """Run branches sequentially on the calling thread."""
    return Placement("local")


def threads(max_workers: int | None = None) -> Placement:
    """Run branch chunks on the patch-parallel worker pool."""
    return Placement("threads", max_workers=max_workers)


def cluster(spec: ClusterSpec) -> Placement:
    """Shard branches across the devices of ``spec``."""
    return Placement("cluster", cluster=spec)


@dataclass(frozen=True)
class ExecutionPolicy:
    """One immutable description of how to execute (see module docstring).

    ``max_stale_frames`` and ``drift_sample_every`` parameterize the
    ``stale_halo`` tier exactly as they do on
    :class:`~repro.streaming.StreamSession` (``max_stale_frames=0``
    degenerates to exact behaviour; ``None`` leaves staleness unbounded).
    """

    placement: Placement = Placement()
    backend: str | None = None
    tier: str = "exact"
    max_stale_frames: int | None = None
    drift_sample_every: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.placement, Placement):
            raise TypeError(
                f"placement must be a Placement, got {type(self.placement).__name__}"
            )
        if self.backend is not None:
            from ..backend import available_backends

            if self.backend not in available_backends():
                raise ValueError(
                    f"unknown backend {self.backend!r}; "
                    f"available: {', '.join(available_backends())}"
                )
        if self.tier not in FRESHNESS_TIERS:
            raise ValueError(
                f"tier must be one of {FRESHNESS_TIERS}, got {self.tier!r}"
            )
        if self.drift_sample_every < 0:
            raise ValueError("drift_sample_every must be >= 0")
        if self.max_stale_frames is not None and self.max_stale_frames < 0:
            raise ValueError("max_stale_frames must be >= 0 (or None for unbounded)")

    # ------------------------------------------------------------- resolution
    def resolved_backend(self) -> str:
        """The backend name after ``REPRO_BACKEND``/default resolution."""
        from ..backend import DEFAULT_BACKEND

        return self.backend or os.environ.get("REPRO_BACKEND") or DEFAULT_BACKEND

    def with_tier(
        self,
        tier: str,
        max_stale_frames: int | None = None,
        drift_sample_every: int | None = None,
    ) -> "ExecutionPolicy":
        """This policy with a different freshness tier."""
        return replace(
            self,
            tier=tier,
            max_stale_frames=(
                max_stale_frames if max_stale_frames is not None else self.max_stale_frames
            ),
            drift_sample_every=(
                drift_sample_every
                if drift_sample_every is not None
                else self.drift_sample_every
            ),
        )

    @classmethod
    def resolve(
        cls,
        policy: "ExecutionPolicy | None" = None,
        *,
        parallel: object = _UNSET,
        parallel_patches: object = _UNSET,
        max_workers: object = _UNSET,
        cluster: object = _UNSET,
        backend: object = _UNSET,
        accuracy_mode: object = _UNSET,
        max_stale_frames: object = _UNSET,
        drift_sample_every: object = _UNSET,
        base: "ExecutionPolicy | None" = None,
        warn: bool = True,
    ) -> "ExecutionPolicy":
        """Map the legacy keyword surface onto a policy (the single shim).

        ``policy`` wins outright, and mixing it with legacy keywords is an
        error — a call site is either on the new surface or the old one.
        Legacy keywords start from ``base`` (the owning object's policy, or a
        default-constructed one) and override its axes; explicitly passing
        any of them emits a :class:`DeprecationWarning` unless ``warn`` is
        False.  ``accuracy_mode`` accepts both the streaming vocabulary
        (``"exact"``/``"stale_halo"``) and the scheduler's
        (``"verify_patch"`` → the ``displaced`` tier).
        """
        legacy = {
            name: value
            for name, value in (
                ("parallel", parallel),
                ("parallel_patches", parallel_patches),
                ("max_workers", max_workers),
                ("cluster", cluster),
                ("backend", backend),
                ("accuracy_mode", accuracy_mode),
                ("max_stale_frames", max_stale_frames),
                ("drift_sample_every", drift_sample_every),
            )
            if value is not _UNSET
        }
        if policy is not None:
            if legacy:
                raise ValueError(
                    "pass either policy= or the legacy keywords "
                    f"({', '.join(sorted(legacy))}), not both"
                )
            return policy
        resolved = base if base is not None else cls()
        if not legacy:
            return resolved
        if warn:
            warnings.warn(
                f"the {', '.join(sorted(legacy))} keyword(s) are deprecated; "
                "pass an ExecutionPolicy (repro.runtime.ExecutionPolicy) instead",
                DeprecationWarning,
                stacklevel=3,
            )

        wants_parallel = bool(legacy.get("parallel")) or bool(
            legacy.get("parallel_patches")
        )
        cluster_spec = legacy.get("cluster")
        if cluster_spec is not None and wants_parallel:
            # The historical engine check, preserved verbatim: a cluster
            # already owns the parallelism structure.
            raise ValueError("parallel_patches and cluster are mutually exclusive")
        if cluster_spec is not None:
            placement = Placement("cluster", cluster=cluster_spec)
        elif wants_parallel:
            placement = Placement("threads", max_workers=legacy.get("max_workers"))
        elif "parallel" in legacy or "parallel_patches" in legacy or "cluster" in legacy:
            placement = Placement("local")
        else:
            placement = resolved.placement

        tier = resolved.tier
        mode = legacy.get("accuracy_mode")
        if mode is not None:
            if mode == "verify_patch":
                tier = "displaced"
            elif mode in ("exact", "stale_halo"):
                tier = mode
            else:
                raise ValueError(
                    "accuracy_mode must be one of ('exact', 'stale_halo', "
                    f"'verify_patch'), got {mode!r}"
                )
        return cls(
            placement=placement,
            backend=legacy.get("backend", resolved.backend),
            tier=tier,
            max_stale_frames=legacy.get("max_stale_frames", resolved.max_stale_frames),
            drift_sample_every=legacy.get(
                "drift_sample_every", resolved.drift_sample_every
            )
            or 0,
        )
