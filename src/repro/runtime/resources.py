"""The shared resource runtime: pools, fork workers and shared memory.

A :class:`Runtime` is the one place in the codebase that constructs
concurrency resources — thread pools, fork pools, shared-memory segments
(enforced by lint rule REP008).  Executors no longer privately own pools;
they hold :class:`ThreadPoolLease` handles checked out from a runtime, so:

* two engines (or many tenants) given the same runtime transparently share
  one pool set — pools are keyed by ``(tag, max_workers)`` and refcounted by
  lease;
* one :meth:`Runtime.close` tears down every pool, fork worker and segment
  the process checked out, with ``wait=True`` draining in-flight futures;
* a lease used after its runtime closed fails with a clear
  :class:`RuntimeClosed` instead of submitting work to dead threads.

Executors that are *not* given a runtime lazily create a **private** one, so
the historical single-owner lifecycle (``executor.close()`` shuts its own
pool down, and a later use revives it) is preserved exactly; injection is
purely opt-in.  Fork pools are tracked but never shared between backends:
forked workers inherit the parent's token table at fork time, so a pool
forked before another executor registered itself would not know that
executor (see :mod:`repro.backend.multiprocess`).
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Callable

__all__ = [
    "Runtime",
    "RuntimeClosed",
    "RuntimeStats",
    "ThreadPoolLease",
    "attach_segment",
]


class RuntimeClosed(RuntimeError):
    """Raised when using a runtime (or a handle leased from it) after close()."""


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing shared-memory segment without registering it
    for cleanup.

    The creating runtime owns the segment's lifetime (it unlinks after the
    tiles are read back); letting a worker's resource tracker also register
    it produces spurious leak warnings / double unlinks at worker exit.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track kwarg; suppress registration.
        # unregister() after the fact is not enough: the tracker's cache is a
        # set, so N worker registrations collapse into one entry and the
        # extra unregisters raise KeyErrors inside the tracker process.
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class _PoolEntry:
    """One runtime-owned thread pool plus its live-lease refcount.

    A pool whose refcount drops to zero stays warm (threads are cheap to
    keep, expensive to respawn per request); only :meth:`Runtime.close`
    actually shuts it down.
    """

    def __init__(self, key: tuple, pool: ThreadPoolExecutor, max_workers: int) -> None:
        self.key = key
        self.pool = pool
        self.max_workers = max_workers
        self.leases = 0
        self.closed = False


class ThreadPoolLease:
    """A leased handle on a runtime-owned thread pool.

    Quacks like the executor for the two operations lease holders need —
    :meth:`submit` and introspection — but routes ownership questions back
    to the runtime: releasing the lease never tears the (possibly shared)
    pool down, and submitting after the runtime closed raises
    :class:`RuntimeClosed` instead of ``RuntimeError: cannot schedule new
    futures after shutdown``.
    """

    def __init__(self, runtime: "Runtime", entry: _PoolEntry) -> None:
        self._runtime = runtime
        self._entry = entry
        self._released = False

    @property
    def max_workers(self) -> int:
        return self._entry.max_workers

    @property
    def tag(self) -> str:
        return self._entry.key[0]

    def submit(self, fn: Callable, /, *args, **kwargs) -> Future:
        if self._released:
            raise RuntimeClosed(
                f"lease on pool {self._entry.key!r} was released; "
                "re-lease from the runtime before submitting"
            )
        if self._entry.closed:
            raise RuntimeClosed(
                f"runtime {self._runtime.name!r} is closed; the leased pool "
                f"{self._entry.key!r} no longer accepts work"
            )
        return self._entry.pool.submit(fn, *args, **kwargs)

    def release(self) -> None:
        """Hand the pool back to the runtime (idempotent)."""
        if not self._released:
            self._released = True
            self._runtime._release(self._entry)


@dataclass(frozen=True)
class RuntimeStats:
    """Introspection snapshot: what a runtime currently owns."""

    thread_pools: int
    active_leases: int
    fork_pools: int
    live_segments: int
    closed: bool
    pool_keys: tuple[tuple, ...] = ()


class Runtime:
    """Shared, thread-safe registry of execution resources (module docstring).

    Every public method is safe to call from any thread.  ``token`` is a
    process-unique monotonic id used by executor caches to key per-runtime
    state (object identity would be reusable after garbage collection).
    """

    _TOKENS = itertools.count()

    def __init__(self, name: str | None = None) -> None:
        self.token = next(Runtime._TOKENS)
        self.name = name if name is not None else f"runtime-{self.token}"
        self._lock = threading.Lock()
        self._closed = False
        self._thread_pools: dict[tuple, _PoolEntry] = {}
        self._fork_pools: list = []
        self._segments: dict[str, shared_memory.SharedMemory] = {}

    # ------------------------------------------------------------ thread pools
    def thread_pool(self, max_workers: int, tag: str = "worker") -> ThreadPoolLease:
        """Lease the shared pool for ``(tag, max_workers)`` (created on first
        lease; later leases with the same key share the same threads)."""
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        key = (tag, max_workers)
        with self._lock:
            self._check_open()
            entry = self._thread_pools.get(key)
            if entry is None:
                pool = ThreadPoolExecutor(
                    max_workers=max_workers, thread_name_prefix=tag
                )
                entry = _PoolEntry(key, pool, max_workers)
                self._thread_pools[key] = entry
            entry.leases += 1
            return ThreadPoolLease(self, entry)

    def serial_pool(self, tag: str, index: int) -> ThreadPoolLease:
        """Lease the single-thread pool ``{tag}-{index}`` (device workers:
        one serial executor per simulated device, shared across executors
        leasing from the same runtime)."""
        return self.thread_pool(1, tag=f"{tag}-{index}")

    def _release(self, entry: _PoolEntry) -> None:
        with self._lock:
            if entry.leases > 0:
                entry.leases -= 1

    # -------------------------------------------------------------- fork pools
    def fork_pool(self, processes: int):
        """Create (and track) a fork-context process pool.

        Fork pools are deliberately **not** shared: forked workers inherit
        the parent's state at fork time, so reusing a pool across executors
        would hand workers a stale view of the fork-state token table.  The
        runtime tracks the pool so :meth:`close` can terminate leaks; the
        caller owns normal teardown and reports it via
        :meth:`discard_fork_pool`.
        """
        ctx = multiprocessing.get_context("fork")
        with self._lock:
            self._check_open()
            pool = ctx.Pool(processes=processes)
            self._fork_pools.append(pool)
            return pool

    def discard_fork_pool(self, pool: object) -> None:
        """Stop tracking ``pool`` (already terminated by its owner); tolerant
        of pools the runtime never tracked (idempotent teardown paths)."""
        with self._lock:
            try:
                self._fork_pools.remove(pool)
            except ValueError:
                pass

    # ---------------------------------------------------------- shared memory
    def shared_segment(self, size: int) -> shared_memory.SharedMemory:
        """Create (and track) a shared-memory segment of ``size`` bytes."""
        with self._lock:
            self._check_open()
            segment = shared_memory.SharedMemory(create=True, size=max(int(size), 1))
            self._segments[segment.name] = segment
            return segment

    def release_segment(self, segment: shared_memory.SharedMemory) -> None:
        """Close, unlink and untrack ``segment`` (idempotent)."""
        with self._lock:
            tracked = self._segments.pop(segment.name, None) is not None
        segment.close()
        if tracked:
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass

    # ---------------------------------------------------------------- lifecycle
    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeClosed(f"runtime {self.name!r} is closed")

    def stats(self) -> RuntimeStats:
        """Snapshot of owned resources, for tests and capacity introspection."""
        with self._lock:
            return RuntimeStats(
                thread_pools=len(self._thread_pools),
                active_leases=sum(e.leases for e in self._thread_pools.values()),
                fork_pools=len(self._fork_pools),
                live_segments=len(self._segments),
                closed=self._closed,
                pool_keys=tuple(sorted(self._thread_pools)),
            )

    def close(self, wait: bool = True) -> None:
        """Tear down every pool, fork worker and segment (idempotent).

        ``wait=True`` joins pool threads, so futures already submitted
        complete before close returns; leases observe the closed state and
        refuse new submissions either way.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            entries = list(self._thread_pools.values())
            fork_pools = list(self._fork_pools)
            segments = list(self._segments.values())
            self._thread_pools.clear()
            self._fork_pools.clear()
            self._segments.clear()
        for entry in entries:
            entry.closed = True
        for entry in entries:
            entry.pool.shutdown(wait=wait)
        for pool in fork_pools:
            pool.terminate()
            if wait:
                pool.join()
        for segment in segments:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - owner already unlinked
                pass

    def __enter__(self) -> "Runtime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
