"""QuantMCU reproduction.

A pure-Python (NumPy) reproduction of "Value-Driven Mixed-Precision
Quantization for Patch-Based Inference on Microcontrollers" (DATE 2024),
including every substrate the paper depends on: a CNN inference/training
framework, a model zoo, quantization and patch-based-inference machinery, an
MCU performance model, synthetic datasets, all baselines, and one experiment
runner per table/figure of the paper's evaluation.

Top-level convenience imports cover the public API a downstream user needs
most often; each subpackage exposes the full detail.
"""

from . import (
    baselines,
    core,
    data,
    devtools,
    distributed,
    experiments,
    hardware,
    models,
    nn,
    patch,
    quant,
    runtime,
    serving,
    streaming,
)
from .core import QuantMCUPipeline, QuantMCUResult, run_vdqs_whole_model
from .distributed import DistributedExecutor, ShardPlanner
from .hardware import ARDUINO_NANO_33_BLE, STM32H743, ClusterSpec, MCUDevice, get_cluster, get_device
from .models import available_models, build_model
from .quant import FeatureMapIndex, QuantizationConfig
from .runtime import ExecutionPolicy, Placement, Runtime
from .serving import CompiledPipeline, InferenceEngine, ModelSpec, compile_pipeline
from .streaming import StreamSession

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "nn",
    "models",
    "quant",
    "patch",
    "core",
    "baselines",
    "hardware",
    "data",
    "devtools",
    "distributed",
    "experiments",
    "runtime",
    "serving",
    "streaming",
    "ExecutionPolicy",
    "Placement",
    "Runtime",
    "StreamSession",
    "DistributedExecutor",
    "ShardPlanner",
    "ClusterSpec",
    "get_cluster",
    "CompiledPipeline",
    "InferenceEngine",
    "ModelSpec",
    "compile_pipeline",
    "QuantMCUPipeline",
    "QuantMCUResult",
    "run_vdqs_whole_model",
    "build_model",
    "available_models",
    "QuantizationConfig",
    "FeatureMapIndex",
    "MCUDevice",
    "ARDUINO_NANO_33_BLE",
    "STM32H743",
    "get_device",
]
